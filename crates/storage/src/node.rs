//! A single storage node.
//!
//! Paper §4.3: bags are implemented at each storage node as append-only
//! files; an insert atomically appends a chunk, and a remove reads the next
//! chunk sequentially, advancing a file pointer so the same chunk is never
//! returned twice. End-of-file means all chunks stored *at this node* have
//! been removed. The bag API additionally supports rewinding (reuse of a
//! bag's contents), non-destructive reads (multiple workers scanning a full
//! bag concurrently), sampling the amount of data remaining, and garbage
//! collection.
//!
//! Concurrency: node state is sharded per bag. The bag directory is an
//! `RwLock<HashMap<BagId, Arc<BagFile>>>` — the hot path takes a *read*
//! lock only long enough to clone the bag's `Arc`, then operates under
//! that bag's own mutex. Concurrent workers touching different bags never
//! contend, and workers on the same bag contend only with each other,
//! which is what lets task clones (paper §4.2) scale with worker count.
//! Each stream keeps running `remaining_bytes` so [`StorageNode::sample`]
//! is O(1) instead of scanning unread chunks — the master polls samples
//! every heuristic tick, so sampling is control-plane-critical. The
//! counters the sampler reads are additionally mirrored into
//! cache-line-padded atomics outside the bag mutex (see `SampleCells`),
//! so polling under write load neither waits on the writers' lock nor
//! false-shares their cache lines.
//!
//! The node also supports fault injection ([`StorageNode::fail`] /
//! [`StorageNode::recover`]) used by the fault-tolerance tests and the
//! Figure 11 reproduction, and a draining mode used for dynamic node
//! removal (paper §3.4).

use crate::error::StorageError;
use hurricane_common::metrics::Counter;
use hurricane_common::{BagId, StorageNodeId};
use hurricane_format::Chunk;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A point-in-time estimate of a bag's contents at one node (or summed
/// across the cluster). This is the "sampling" operation the application
/// master uses to estimate `T`, the remaining task time, in the cloning
/// heuristic (paper §4.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BagSample {
    /// Chunks ever inserted.
    pub total_chunks: u64,
    /// Chunks already removed (pointer position).
    pub removed_chunks: u64,
    /// Chunks still removable.
    pub remaining_chunks: u64,
    /// Bytes still removable.
    pub remaining_bytes: u64,
    /// Bytes ever inserted.
    pub total_bytes: u64,
    /// Whether the bag is sealed against further inserts.
    pub sealed: bool,
}

impl BagSample {
    /// Merges a per-node sample into a cluster-wide aggregate.
    pub fn merge(&mut self, other: &BagSample) {
        self.total_chunks += other.total_chunks;
        self.removed_chunks += other.removed_chunks;
        self.remaining_chunks += other.remaining_chunks;
        self.remaining_bytes += other.remaining_bytes;
        self.total_bytes += other.total_bytes;
        self.sealed &= other.sealed;
    }

    /// Fraction of inserted chunks already removed, in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.total_chunks == 0 {
            0.0
        } else {
            self.removed_chunks as f64 / self.total_chunks as f64
        }
    }
}

/// Outcome of a remove request at one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeRemove {
    /// A chunk was removed and is returned to the caller.
    Chunk(Chunk),
    /// This node currently has no unremoved chunk for the bag, but the bag
    /// is not sealed, so more may still arrive.
    Empty,
    /// This node has no unremoved chunk and the bag is sealed: end-of-file.
    Eof,
}

/// Outcome of a batched remove at one node (or, via the cluster, at one
/// replica group): the removed chunks plus the stream state where the
/// batch stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRemoveBatch {
    /// Chunks removed, in pointer order. May be empty.
    pub chunks: Vec<Chunk>,
    /// Identity of the removed chunks (run-contiguous ranges, in serve
    /// order). Mirrors forward these so backups consume exactly the
    /// served chunks — see [`TagSegment`].
    pub tags: Vec<TagSegment>,
    /// True when the stream had no further chunk at batch end (the batch
    /// came back short). False when the batch filled `max_n`.
    pub exhausted: bool,
    /// True when `exhausted` *and* the bag is sealed: end-of-file.
    pub eof: bool,
}

/// Identity of a contiguous range of chunks from one insert run: chunks
/// `start .. start + len` of run `run`.
///
/// Every insert run (one batched append fanned out to a replica group)
/// is minted a process-globally unique id by [`next_run_id`], carried by
/// all replicas of that run. A chunk's identity within its origin stream
/// is `(run, k)` — its run id plus its position within the run. Pointer
/// mirroring names the *identities* a serving replica consumed rather
/// than a count, so replicas whose logs diverged after a partial
/// replicated insert (one replica missed a run the other recorded) can
/// never skip past a chunk the serving replica did not actually serve —
/// the double-serve hazard of the old count-based protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagSegment {
    /// Insert-run id ([`next_run_id`]).
    pub run: u64,
    /// First in-run position covered.
    pub start: u32,
    /// Number of consecutive positions covered.
    pub len: u32,
}

/// Mints a process-globally unique insert-run id (never 0).
///
/// Writers mint one id per logical insert run *before* the replica
/// fan-out, so every replica stores the run's chunks under identical
/// `(run, k)` tags. Retransmissions of the same request reuse the id —
/// a retransmitted run is the same logical run.
///
/// Run ids are unique within one writer process. The cluster model has a
/// single driver process minting all inserts (cluster metadata is
/// likewise process-local); a multi-driver deployment would need a
/// writer-id prefix here.
pub fn next_run_id() -> u64 {
    static NEXT_RUN: AtomicU64 = AtomicU64::new(1);
    NEXT_RUN.fetch_add(1, Ordering::Relaxed)
}

/// One replicated chunk stream within a bag file: the chunks addressed
/// to one *origin* (primary node), each carrying its `(run, k)` identity
/// tag, with a consumption bitmap, a consumed-prefix pointer, and a
/// running count of unread bytes (keeping [`StorageNode::sample`] O(1)).
///
/// Consumption is *hole-tolerant*: a mirror of a remove served by
/// another replica marks the served chunks' tags consumed wherever they
/// sit in this log, which may leave unconsumed chunks *before* consumed
/// ones when replica logs diverged (a partial replicated insert landed
/// here but not at the serving replica). Serving skips consumed entries,
/// so the marooned chunks are still served exactly once on failover.
#[derive(Debug, Default)]
struct Stream {
    chunks: Vec<Chunk>,
    /// `(run, k)` identity per entry, parallel to `chunks`.
    tags: Vec<(u64, u32)>,
    /// Per-entry consumption marks, parallel to `chunks`. Set by a local
    /// serve or by a mirror naming the entry's tag; never cleared except
    /// by rewind/discard.
    consumed: Vec<bool>,
    /// Index of the first entry that may still be unconsumed (everything
    /// before it is consumed). Lazily advanced over the consumed prefix.
    next: usize,
    /// Entries not yet consumed, anywhere in the log (O(1) drain check).
    live: usize,
    /// Sum of unconsumed chunk lengths, maintained on every append,
    /// remove, mirror, and rewind.
    remaining_bytes: u64,
    /// Sum of all chunk lengths ever appended to this stream. Kept per
    /// stream (not per file) so sampling the own stream never counts
    /// bytes mirrored here for other primaries.
    total_bytes: u64,
}

impl Stream {
    fn push(&mut self, chunk: Chunk, run: u64, k: u32) {
        self.remaining_bytes += chunk.len() as u64;
        self.total_bytes += chunk.len() as u64;
        self.chunks.push(chunk);
        self.tags.push((run, k));
        self.consumed.push(false);
        self.live += 1;
    }

    /// Skips the consumed prefix, then consumes and returns the first
    /// live entry along with its identity tag.
    fn take_next(&mut self) -> Option<(Chunk, (u64, u32))> {
        while self.next < self.chunks.len() && self.consumed[self.next] {
            self.next += 1;
        }
        if self.next >= self.chunks.len() {
            return None;
        }
        let i = self.next;
        self.consumed[i] = true;
        self.live -= 1;
        self.next = i + 1;
        let chunk = self.chunks[i].clone();
        self.remaining_bytes -= chunk.len() as u64;
        Some((chunk, self.tags[i]))
    }

    /// Marks the chunks identified by `segs` consumed (the mirror of a
    /// remove served by another replica). Entries already consumed are
    /// left alone, so reapplying a mirror is idempotent; tags this log
    /// never recorded (it missed that insert run) are no-ops. Returns
    /// the newly consumed entry count and their byte total.
    fn consume_tags(&mut self, segs: &[TagSegment]) -> (u64, u64) {
        let want: u64 = segs.iter().map(|s| u64::from(s.len)).sum();
        let mut n = 0u64;
        let mut bytes = 0u64;
        let mut i = self.next;
        while i < self.chunks.len() && n < want {
            if !self.consumed[i] {
                let (run, k) = self.tags[i];
                if segs
                    .iter()
                    .any(|s| s.run == run && k >= s.start && k - s.start < s.len)
                {
                    self.consumed[i] = true;
                    self.live -= 1;
                    bytes += self.chunks[i].len() as u64;
                    n += 1;
                }
            }
            i += 1;
        }
        while self.next < self.chunks.len() && self.consumed[self.next] {
            self.next += 1;
        }
        self.remaining_bytes -= bytes;
        (n, bytes)
    }

    fn rewind(&mut self) {
        self.next = 0;
        self.consumed.iter_mut().for_each(|c| *c = false);
        self.live = self.chunks.len();
        self.remaining_bytes = self.total_bytes;
    }
}

/// One bag's state at one node: per-origin append-only chunk streams.
///
/// A node acting as primary stores chunks under its own index; acting as
/// a backup it stores mirrored chunks under the *primary's* index. Each
/// stream keeps its own read pointer — a backup's pointer is advanced by
/// mirror messages so that a failover resumes near the primary's
/// position, and a primary's reads can never consume (or double-serve)
/// another primary's mirrored data.
#[derive(Debug, Default)]
struct BagFileInner {
    streams: HashMap<u32, Stream>,
    sealed: bool,
    collected: bool,
}

/// Lock-free mirrors of the node's *own* (primary) stream counters for
/// one bag, read by [`StorageNode::sample`] without touching the bag
/// mutex.
///
/// The master polls samples every heuristic tick while writers hammer
/// the same bag; routing that poll through the bag mutex made the O(1)
/// counter read 4.5× slower under 4-writer load than idle — the sampler
/// was paying lock handoffs and bouncing the mutex word's cache line.
/// These cells live on their **own cache line** (`align(64)`), separate
/// from the mutex word the writers hammer, so a poll is four relaxed
/// loads with no lock traffic and no false sharing with the lock.
///
/// Writers update the cells while holding the bag mutex, so writes never
/// race each other; the sampler's reads are relaxed and may observe a
/// mid-update combination (e.g. `total` bumped before `remaining_bytes`).
/// That is acceptable by contract: a [`BagSample`] is a point-in-time
/// *estimate* for the cloning heuristic, and the skew is bounded by one
/// in-flight batch.
#[repr(align(64))]
#[derive(Debug, Default)]
struct SampleCells {
    total_chunks: AtomicU64,
    removed_chunks: AtomicU64,
    remaining_bytes: AtomicU64,
    total_bytes: AtomicU64,
    sealed: AtomicBool,
    collected: AtomicBool,
}

/// One bag's state behind its own lock: operations on different bags at
/// the same node proceed fully in parallel. The sampler's counters are
/// mirrored outside the lock (see [`SampleCells`]).
#[derive(Debug, Default)]
struct BagFile {
    inner: Mutex<BagFileInner>,
    cells: SampleCells,
}

/// Hot-path statistics for one storage node.
#[derive(Debug, Default)]
pub struct NodeStats {
    /// Chunks appended.
    pub inserts: Counter,
    /// Chunks removed (served to workers).
    pub removes: Counter,
    /// Remove probes that found nothing (the probing cost near bag
    /// emptiness discussed in paper §3.3).
    pub empty_probes: Counter,
    /// Bytes appended.
    pub bytes_in: Counter,
    /// Bytes served.
    pub bytes_out: Counter,
    /// Batched operations served (each covers ≥ 1 chunk).
    pub batch_ops: Counter,
}

/// A storage node: the Hurricane server process of paper §3.
pub struct StorageNode {
    id: StorageNodeId,
    down: AtomicBool,
    draining: AtomicBool,
    bags: RwLock<HashMap<BagId, Arc<BagFile>>>,
    stats: NodeStats,
}

impl StorageNode {
    /// Creates an empty, healthy node.
    pub fn new(id: StorageNodeId) -> Self {
        Self {
            id,
            down: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            bags: RwLock::new(HashMap::new()),
            stats: NodeStats::default(),
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> StorageNodeId {
        self.id
    }

    /// Access to the node's statistics counters.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// Marks the node as crashed: every subsequent operation fails with
    /// [`StorageError::NodeDown`] until [`StorageNode::recover`].
    pub fn fail(&self) {
        self.down.store(true, Ordering::Release);
    }

    /// Brings a crashed node back. Its data is intact (the paper's storage
    /// nodes keep bag data on disk, which survives a process crash).
    pub fn recover(&self) {
        self.down.store(false, Ordering::Release);
    }

    /// Returns whether the node is currently down.
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::Acquire)
    }

    /// Puts the node into draining mode: inserts are rejected, removes
    /// still served (paper §3.4, storage-node removal).
    pub fn start_draining(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// Returns whether the node is draining.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Returns true when every bag at this node has been fully removed,
    /// i.e. a draining node can now be decommissioned.
    pub fn is_drained(&self) -> Result<bool, StorageError> {
        self.check_up()?;
        let bags: Vec<Arc<BagFile>> = self.bags.read().values().cloned().collect();
        Ok(bags.iter().all(|b| {
            let inner = b.inner.lock();
            inner.collected || inner.streams.values().all(|s| s.live == 0)
        }))
    }

    fn check_up(&self) -> Result<(), StorageError> {
        if self.is_down() {
            Err(StorageError::NodeDown(self.id))
        } else {
            Ok(())
        }
    }

    /// Returns `bag`'s file, creating it on first touch. The read lock is
    /// the only directory-level synchronization on the hot path.
    fn bag_file(&self, bag: BagId) -> Arc<BagFile> {
        if let Some(file) = self.bags.read().get(&bag) {
            return file.clone();
        }
        self.bags.write().entry(bag).or_default().clone()
    }

    /// Appends `chunk` to `bag` (the atomic append of paper §4.3), with
    /// this node as the origin.
    pub fn insert(&self, bag: BagId, chunk: Chunk) -> Result<(), StorageError> {
        self.insert_from(bag, chunk, self.id.0)
    }

    /// Appends `chunk` tagged with the primary index it was addressed to.
    /// Backups use this so snapshots can reconstruct one copy per chunk.
    pub fn insert_from(&self, bag: BagId, chunk: Chunk, origin: u32) -> Result<(), StorageError> {
        self.insert_from_batch(bag, std::slice::from_ref(&chunk), origin)
    }

    /// Appends every chunk of `chunks` under one lock acquisition — the
    /// batched insert of the storage hot path. Either all chunks land or
    /// none do (the bag-state checks happen before the first append).
    pub fn insert_batch(&self, bag: BagId, chunks: &[Chunk]) -> Result<(), StorageError> {
        self.insert_from_batch(bag, chunks, self.id.0)
    }

    /// Batched [`StorageNode::insert_from`]. Mints a fresh run id for the
    /// appended chunks; replicated writers use
    /// [`StorageNode::insert_run`] instead so all replicas of one run
    /// share its id.
    pub fn insert_from_batch(
        &self,
        bag: BagId,
        chunks: &[Chunk],
        origin: u32,
    ) -> Result<(), StorageError> {
        self.insert_run(bag, chunks, origin, next_run_id())
    }

    /// Appends one insert run under its writer-minted id (see
    /// [`next_run_id`]): chunk `k` of the run is stored with identity
    /// tag `(run, k)`, identical at every replica the run is fanned out
    /// to — the identity pointer mirroring consumes by.
    pub fn insert_run(
        &self,
        bag: BagId,
        chunks: &[Chunk],
        origin: u32,
        run: u64,
    ) -> Result<(), StorageError> {
        self.check_up()?;
        if self.is_draining() {
            return Err(StorageError::NodeDraining(self.id));
        }
        if chunks.is_empty() {
            return Ok(());
        }
        let file = self.bag_file(bag);
        let mut inner = file.inner.lock();
        if inner.collected {
            return Err(StorageError::BagCollected(bag));
        }
        if inner.sealed {
            return Err(StorageError::BagSealed(bag));
        }
        let mut bytes = 0u64;
        let stream = inner.streams.entry(origin).or_default();
        for (k, chunk) in chunks.iter().enumerate() {
            bytes += chunk.len() as u64;
            stream.push(chunk.clone(), run, k as u32);
        }
        if origin == self.id.0 {
            let cells = &file.cells;
            cells
                .total_chunks
                .fetch_add(chunks.len() as u64, Ordering::Relaxed);
            cells.total_bytes.fetch_add(bytes, Ordering::Relaxed);
            cells.remaining_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        self.stats.bytes_in.add(bytes);
        self.stats.inserts.add(chunks.len() as u64);
        self.stats.batch_ops.incr();
        Ok(())
    }

    /// Removes the next chunk of `bag`'s own (primary) stream here.
    pub fn remove(&self, bag: BagId) -> Result<NodeRemove, StorageError> {
        let own = self.id.0;
        self.remove_from(bag, own)
    }

    /// Removes the next chunk of the stream addressed to primary
    /// `origin` — the failover read path when `origin`'s node is down.
    ///
    /// Dedicated single-chunk path (no batch `Vec`): the unbatched remove
    /// is still what probe loops issue near bag emptiness, so it must not
    /// allocate.
    pub fn remove_from(&self, bag: BagId, origin: u32) -> Result<NodeRemove, StorageError> {
        self.check_up()?;
        let file = self.bag_file(bag);
        let mut inner = file.inner.lock();
        if inner.collected {
            return Err(StorageError::BagCollected(bag));
        }
        let sealed = inner.sealed;
        let stream = inner.streams.entry(origin).or_default();
        match stream.take_next() {
            Some((chunk, _tag)) => {
                if origin == self.id.0 {
                    file.cells.removed_chunks.fetch_add(1, Ordering::Relaxed);
                    file.cells
                        .remaining_bytes
                        .fetch_sub(chunk.len() as u64, Ordering::Relaxed);
                }
                drop(inner);
                self.stats.removes.incr();
                self.stats.bytes_out.add(chunk.len() as u64);
                Ok(NodeRemove::Chunk(chunk))
            }
            None => {
                drop(inner);
                self.stats.empty_probes.incr();
                Ok(if sealed {
                    NodeRemove::Eof
                } else {
                    NodeRemove::Empty
                })
            }
        }
    }

    /// Removes up to `max_n` chunks of `bag`'s own stream under one lock
    /// acquisition.
    pub fn remove_batch(&self, bag: BagId, max_n: usize) -> Result<NodeRemoveBatch, StorageError> {
        let own = self.id.0;
        self.remove_from_batch(bag, own, max_n)
    }

    /// Batched [`StorageNode::remove_from`]: removes up to `max_n` chunks
    /// of origin-stream `origin`, advancing the pointer once per chunk but
    /// paying the lock and directory lookup once per batch.
    pub fn remove_from_batch(
        &self,
        bag: BagId,
        origin: u32,
        max_n: usize,
    ) -> Result<NodeRemoveBatch, StorageError> {
        self.check_up()?;
        let file = self.bag_file(bag);
        let mut inner = file.inner.lock();
        if inner.collected {
            return Err(StorageError::BagCollected(bag));
        }
        let sealed = inner.sealed;
        let stream = inner.streams.entry(origin).or_default();
        let mut chunks = Vec::new();
        let mut tags: Vec<TagSegment> = Vec::new();
        let mut bytes = 0u64;
        while chunks.len() < max_n {
            match stream.take_next() {
                Some((chunk, (run, k))) => {
                    bytes += chunk.len() as u64;
                    chunks.push(chunk);
                    match tags.last_mut() {
                        Some(seg) if seg.run == run && seg.start + seg.len == k => seg.len += 1,
                        _ => tags.push(TagSegment {
                            run,
                            start: k,
                            len: 1,
                        }),
                    }
                }
                None => break,
            }
        }
        let exhausted = chunks.len() < max_n;
        if origin == self.id.0 && !chunks.is_empty() {
            file.cells
                .removed_chunks
                .fetch_add(chunks.len() as u64, Ordering::Relaxed);
            file.cells
                .remaining_bytes
                .fetch_sub(bytes, Ordering::Relaxed);
        }
        drop(inner);
        if chunks.is_empty() {
            self.stats.empty_probes.incr();
        } else {
            self.stats.removes.add(chunks.len() as u64);
            self.stats.bytes_out.add(bytes);
            self.stats.batch_ops.incr();
        }
        Ok(NodeRemoveBatch {
            chunks,
            tags,
            exhausted,
            eof: exhausted && sealed,
        })
    }

    /// Marks the chunks identified by `tags` consumed in origin-stream
    /// `origin` without returning data. Used to mirror a serving
    /// replica's remove onto the others so a failover resumes from the
    /// right position (paper §4.4: "Each bag ... is replicated along with
    /// bag state, such as the current file pointer").
    ///
    /// Consuming by *identity* rather than count makes the mirror safe
    /// against divergent replica logs: tags this log never recorded are
    /// ignored, chunks this log holds that the serving replica missed
    /// stay live, and reapplying the same mirror (a retransmission) is
    /// idempotent.
    pub fn mirror_consumed(
        &self,
        bag: BagId,
        origin: u32,
        tags: &[TagSegment],
    ) -> Result<(), StorageError> {
        self.check_up()?;
        let file = self.bag_file(bag);
        let mut inner = file.inner.lock();
        let stream = inner.streams.entry(origin).or_default();
        let (n, bytes) = stream.consume_tags(tags);
        if origin == self.id.0 {
            file.cells.removed_chunks.fetch_add(n, Ordering::Relaxed);
            file.cells
                .remaining_bytes
                .fetch_sub(bytes, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Reads chunk `index` without consuming it. Supports the "multiple
    /// workers read an entire bag concurrently" access mode (paper §4.3),
    /// e.g. broadcasting the small relation of a hash join.
    pub fn read_at(&self, bag: BagId, index: usize) -> Result<Option<Chunk>, StorageError> {
        self.check_up()?;
        let file = self.bag_file(bag);
        let inner = file.inner.lock();
        if inner.collected {
            return Err(StorageError::BagCollected(bag));
        }
        let own = self.id.0;
        Ok(inner
            .streams
            .get(&own)
            .and_then(|s| s.chunks.get(index).cloned()))
    }

    /// Returns a copy of every chunk of `bag` stored here, regardless of the
    /// read pointer. Used to replay the done work bag on master recovery.
    pub fn snapshot(&self, bag: BagId) -> Result<Vec<Chunk>, StorageError> {
        self.check_up()?;
        let file = self.bag_file(bag);
        let inner = file.inner.lock();
        if inner.collected {
            return Err(StorageError::BagCollected(bag));
        }
        Ok(inner
            .streams
            .values()
            .flat_map(|s| s.chunks.iter().cloned())
            .collect())
    }

    /// Returns every chunk of `bag` stored here whose origin is `origin`.
    /// A backup serving a snapshot for a dead primary filters to exactly
    /// the chunks it mirrors for that primary.
    pub fn snapshot_from(&self, bag: BagId, origin: u32) -> Result<Vec<Chunk>, StorageError> {
        self.check_up()?;
        let file = self.bag_file(bag);
        let inner = file.inner.lock();
        if inner.collected {
            return Err(StorageError::BagCollected(bag));
        }
        Ok(inner
            .streams
            .get(&origin)
            .map(|s| s.chunks.clone())
            .unwrap_or_default())
    }

    /// Seals `bag`: no further inserts. Sealing is what turns "empty" into
    /// "end-of-file" and lets workers terminate (paper §3.1).
    pub fn seal(&self, bag: BagId) -> Result<(), StorageError> {
        self.check_up()?;
        let file = self.bag_file(bag);
        file.inner.lock().sealed = true;
        file.cells.sealed.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// Resets the read pointer to the beginning ("reusing the contents of a
    /// bag", paper §4.3; also used to rewind input bags when recovering
    /// from a compute-node failure, §4.4).
    pub fn rewind(&self, bag: BagId) -> Result<(), StorageError> {
        self.check_up()?;
        let file = self.bag_file(bag);
        let mut inner = file.inner.lock();
        if inner.collected {
            return Err(StorageError::BagCollected(bag));
        }
        for stream in inner.streams.values_mut() {
            stream.rewind();
        }
        let cells = &file.cells;
        cells.removed_chunks.store(0, Ordering::Relaxed);
        cells
            .remaining_bytes
            .store(cells.total_bytes.load(Ordering::Relaxed), Ordering::Relaxed);
        Ok(())
    }

    /// Discards all chunks of `bag` and reopens it for inserts. Used to
    /// clear the partial output bags of tasks restarted after a compute
    /// node failure (paper §4.4).
    pub fn discard(&self, bag: BagId) -> Result<(), StorageError> {
        self.check_up()?;
        let file = self.bag_file(bag);
        let mut inner = file.inner.lock();
        inner.streams.clear();
        inner.sealed = false;
        inner.collected = false;
        let cells = &file.cells;
        cells.total_chunks.store(0, Ordering::Relaxed);
        cells.removed_chunks.store(0, Ordering::Relaxed);
        cells.remaining_bytes.store(0, Ordering::Relaxed);
        cells.total_bytes.store(0, Ordering::Relaxed);
        cells.sealed.store(false, Ordering::Relaxed);
        cells.collected.store(false, Ordering::Relaxed);
        Ok(())
    }

    /// Garbage-collects `bag`: frees its chunks; subsequent access fails.
    pub fn collect(&self, bag: BagId) -> Result<(), StorageError> {
        self.check_up()?;
        let file = self.bag_file(bag);
        let mut inner = file.inner.lock();
        inner.streams = HashMap::new();
        inner.collected = true;
        file.cells.collected.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// Samples `bag`'s state at this node. O(1) and **lock-free**: the
    /// running counters are mirrored into cache-line-padded atomic cells
    /// (`SampleCells`) outside the bag mutex, so the master's polling
    /// never contends with (or bounces cache lines against) the writers'
    /// lock — only the bag-directory read lock is touched.
    pub fn sample(&self, bag: BagId) -> Result<BagSample, StorageError> {
        self.check_up()?;
        let file = self.bag_file(bag);
        let cells = &file.cells;
        if cells.collected.load(Ordering::Relaxed) {
            return Err(StorageError::BagCollected(bag));
        }
        // Only the node's own (primary) stream is counted — chunks *and*
        // bytes: with replication, summing primaries across nodes yields
        // exact cluster-wide totals without double-counting backups.
        let total_chunks = cells.total_chunks.load(Ordering::Relaxed);
        let removed_chunks = cells.removed_chunks.load(Ordering::Relaxed);
        Ok(BagSample {
            total_chunks,
            removed_chunks,
            // Saturating: relaxed loads may interleave with a concurrent
            // update and momentarily observe removed ahead of total.
            remaining_chunks: total_chunks.saturating_sub(removed_chunks),
            remaining_bytes: cells.remaining_bytes.load(Ordering::Relaxed),
            total_bytes: cells.total_bytes.load(Ordering::Relaxed),
            sealed: cells.sealed.load(Ordering::Relaxed),
        })
    }

    /// Number of distinct bags with state at this node.
    pub fn bag_count(&self) -> usize {
        self.bags.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(bytes: &[u8]) -> Chunk {
        Chunk::from_vec(bytes.to_vec())
    }

    fn node() -> StorageNode {
        StorageNode::new(StorageNodeId(0))
    }

    #[test]
    fn insert_then_remove_fifo() {
        let n = node();
        let bag = BagId(1);
        n.insert(bag, chunk(b"a")).unwrap();
        n.insert(bag, chunk(b"b")).unwrap();
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(b"a")));
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(b"b")));
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Empty);
        n.seal(bag).unwrap();
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Eof);
    }

    #[test]
    fn exactly_once_per_chunk() {
        let n = node();
        let bag = BagId(1);
        for i in 0..100u8 {
            n.insert(bag, chunk(&[i])).unwrap();
        }
        n.seal(bag).unwrap();
        let mut seen = Vec::new();
        loop {
            match n.remove(bag).unwrap() {
                NodeRemove::Chunk(c) => seen.push(c.bytes()[0]),
                NodeRemove::Eof => break,
                NodeRemove::Empty => unreachable!("sealed bag cannot be Empty"),
            }
        }
        let expected: Vec<u8> = (0..100).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn sealed_bag_rejects_inserts() {
        let n = node();
        let bag = BagId(2);
        n.insert(bag, chunk(b"x")).unwrap();
        n.seal(bag).unwrap();
        assert_eq!(
            n.insert(bag, chunk(b"y")),
            Err(StorageError::BagSealed(bag))
        );
    }

    #[test]
    fn down_node_rejects_everything() {
        let n = node();
        let bag = BagId(3);
        n.insert(bag, chunk(b"x")).unwrap();
        n.fail();
        assert!(matches!(
            n.insert(bag, chunk(b"y")),
            Err(StorageError::NodeDown(_))
        ));
        assert!(matches!(n.remove(bag), Err(StorageError::NodeDown(_))));
        assert!(matches!(n.sample(bag), Err(StorageError::NodeDown(_))));
        n.recover();
        // Data survives the crash.
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(b"x")));
    }

    #[test]
    fn draining_rejects_inserts_serves_removes() {
        let n = node();
        let bag = BagId(4);
        n.insert(bag, chunk(b"x")).unwrap();
        n.start_draining();
        assert!(matches!(
            n.insert(bag, chunk(b"y")),
            Err(StorageError::NodeDraining(_))
        ));
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(b"x")));
        assert!(n.is_drained().unwrap());
    }

    #[test]
    fn rewind_replays_contents() {
        let n = node();
        let bag = BagId(5);
        n.insert(bag, chunk(b"x")).unwrap();
        assert!(matches!(n.remove(bag).unwrap(), NodeRemove::Chunk(_)));
        n.rewind(bag).unwrap();
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(b"x")));
    }

    #[test]
    fn rewind_restores_remaining_bytes() {
        let n = node();
        let bag = BagId(5);
        n.insert(bag, chunk(b"abc")).unwrap();
        n.insert(bag, chunk(b"de")).unwrap();
        n.remove(bag).unwrap();
        assert_eq!(n.sample(bag).unwrap().remaining_bytes, 2);
        n.rewind(bag).unwrap();
        assert_eq!(n.sample(bag).unwrap().remaining_bytes, 5);
    }

    #[test]
    fn discard_clears_and_reopens() {
        let n = node();
        let bag = BagId(6);
        n.insert(bag, chunk(b"x")).unwrap();
        n.seal(bag).unwrap();
        n.discard(bag).unwrap();
        let s = n.sample(bag).unwrap();
        assert_eq!(s.total_chunks, 0);
        assert!(!s.sealed);
        n.insert(bag, chunk(b"z")).unwrap();
    }

    #[test]
    fn collect_frees_and_blocks() {
        let n = node();
        let bag = BagId(7);
        n.insert(bag, chunk(b"x")).unwrap();
        n.collect(bag).unwrap();
        assert_eq!(n.remove(bag), Err(StorageError::BagCollected(bag)));
        assert_eq!(
            n.insert(bag, chunk(b"y")),
            Err(StorageError::BagCollected(bag))
        );
    }

    #[test]
    fn sample_tracks_pointer() {
        let n = node();
        let bag = BagId(8);
        n.insert(bag, chunk(b"abc")).unwrap();
        n.insert(bag, chunk(b"de")).unwrap();
        let s = n.sample(bag).unwrap();
        assert_eq!(s.total_chunks, 2);
        assert_eq!(s.remaining_bytes, 5);
        assert_eq!(s.progress(), 0.0);
        n.remove(bag).unwrap();
        let s = n.sample(bag).unwrap();
        assert_eq!(s.removed_chunks, 1);
        assert_eq!(s.remaining_bytes, 2);
        assert_eq!(s.progress(), 0.5);
    }

    #[test]
    fn mirror_consumed_skips_served_chunks() {
        let n = node();
        let bag = BagId(9);
        n.insert_run(bag, &[chunk(b"a"), chunk(b"b")], 0, 700)
            .unwrap();
        n.mirror_consumed(
            bag,
            0,
            &[TagSegment {
                run: 700,
                start: 0,
                len: 1,
            }],
        )
        .unwrap();
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(b"b")));
    }

    #[test]
    fn snapshot_ignores_pointer() {
        let n = node();
        let bag = BagId(10);
        n.insert(bag, chunk(b"a")).unwrap();
        n.insert(bag, chunk(b"b")).unwrap();
        n.remove(bag).unwrap();
        let snap = n.snapshot(bag).unwrap();
        assert_eq!(snap.len(), 2);
    }

    #[test]
    fn read_at_is_nondestructive() {
        let n = node();
        let bag = BagId(11);
        n.insert(bag, chunk(b"a")).unwrap();
        assert_eq!(n.read_at(bag, 0).unwrap(), Some(chunk(b"a")));
        assert_eq!(n.read_at(bag, 1).unwrap(), None);
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(b"a")));
    }

    #[test]
    fn stats_count_traffic() {
        let n = node();
        let bag = BagId(12);
        n.insert(bag, chunk(b"abcd")).unwrap();
        n.remove(bag).unwrap();
        n.remove(bag).unwrap(); // Empty probe.
        assert_eq!(n.stats().inserts.get(), 1);
        assert_eq!(n.stats().removes.get(), 1);
        assert_eq!(n.stats().empty_probes.get(), 1);
        assert_eq!(n.stats().bytes_in.get(), 4);
        assert_eq!(n.stats().bytes_out.get(), 4);
    }

    #[test]
    fn insert_batch_lands_all_chunks_in_order() {
        let n = node();
        let bag = BagId(13);
        let chunks: Vec<Chunk> = (0..10u8).map(|i| chunk(&[i])).collect();
        n.insert_batch(bag, &chunks).unwrap();
        n.seal(bag).unwrap();
        let got = n.remove_batch(bag, 64).unwrap();
        assert_eq!(got.chunks, chunks);
        assert!(got.exhausted);
        assert!(got.eof);
        assert_eq!(n.stats().inserts.get(), 10);
        assert_eq!(n.stats().removes.get(), 10);
    }

    #[test]
    fn remove_batch_respects_max_n() {
        let n = node();
        let bag = BagId(14);
        for i in 0..10u8 {
            n.insert(bag, chunk(&[i])).unwrap();
        }
        let got = n.remove_batch(bag, 4).unwrap();
        assert_eq!(got.chunks.len(), 4);
        assert!(!got.exhausted);
        assert!(!got.eof);
        let rest = n.remove_batch(bag, 100).unwrap();
        assert_eq!(rest.chunks.len(), 6);
        assert!(rest.exhausted);
        assert!(!rest.eof, "unsealed bag never reports eof");
    }

    #[test]
    fn remove_batch_on_empty_unsealed_is_empty_not_eof() {
        let n = node();
        let bag = BagId(15);
        let got = n.remove_batch(bag, 8).unwrap();
        assert!(got.chunks.is_empty());
        assert!(got.exhausted && !got.eof);
        n.seal(bag).unwrap();
        let got = n.remove_batch(bag, 8).unwrap();
        assert!(got.eof);
    }

    #[test]
    fn batch_insert_to_sealed_bag_is_atomic_noop() {
        let n = node();
        let bag = BagId(16);
        n.seal(bag).unwrap();
        let chunks = vec![chunk(b"a"), chunk(b"b")];
        assert_eq!(
            n.insert_batch(bag, &chunks),
            Err(StorageError::BagSealed(bag))
        );
        assert_eq!(n.stats().inserts.get(), 0, "no partial batch landed");
    }

    #[test]
    fn mirror_consumed_advances_in_bulk() {
        let n = node();
        let bag = BagId(17);
        let chunks: Vec<Chunk> = (0..5u8).map(|i| chunk(&[i])).collect();
        n.insert_run(bag, &chunks, 0, 900).unwrap();
        n.mirror_consumed(
            bag,
            0,
            &[TagSegment {
                run: 900,
                start: 0,
                len: 3,
            }],
        )
        .unwrap();
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(&[3])));
        assert_eq!(n.sample(bag).unwrap().removed_chunks, 4);
    }

    #[test]
    fn mirror_consumed_is_idempotent() {
        let n = node();
        let bag = BagId(18);
        let chunks: Vec<Chunk> = (0..4u8).map(|i| chunk(&[i])).collect();
        n.insert_run(bag, &chunks, 0, 901).unwrap();
        let seg = TagSegment {
            run: 901,
            start: 0,
            len: 2,
        };
        n.mirror_consumed(bag, 0, &[seg]).unwrap();
        n.mirror_consumed(bag, 0, &[seg]).unwrap(); // Retransmission.
        assert_eq!(n.sample(bag).unwrap().removed_chunks, 2);
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(&[2])));
    }

    #[test]
    fn mirror_consumed_tolerates_divergent_logs() {
        // A backup recorded run 10 (a partial replicated insert the
        // primary missed) *before* run 11. The primary serves run 11's
        // chunks; mirroring that consumption must leave run 10's chunk
        // live here — the old count-based skip would have consumed it.
        let n = node();
        let bag = BagId(19);
        n.insert_run(bag, &[chunk(b"X")], 0, 10).unwrap();
        n.insert_run(bag, &[chunk(b"y"), chunk(b"z")], 0, 11)
            .unwrap();
        n.mirror_consumed(
            bag,
            0,
            &[TagSegment {
                run: 11,
                start: 0,
                len: 2,
            }],
        )
        .unwrap();
        // Failover serves exactly the marooned chunk, once.
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(b"X")));
        n.seal(bag).unwrap();
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Eof);
    }

    #[test]
    fn mirror_consumed_ignores_unknown_tags() {
        // Tags for a run this log never recorded (it missed the insert)
        // are a no-op; the chunks it does hold stay live.
        let n = node();
        let bag = BagId(20);
        n.insert_run(bag, &[chunk(b"a")], 0, 30).unwrap();
        n.mirror_consumed(
            bag,
            0,
            &[TagSegment {
                run: 31,
                start: 0,
                len: 5,
            }],
        )
        .unwrap();
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(b"a")));
    }

    #[test]
    fn remove_batch_reports_run_tags() {
        let n = node();
        let bag = BagId(21);
        n.insert_run(bag, &[chunk(b"a"), chunk(b"b")], 0, 40)
            .unwrap();
        n.insert_run(bag, &[chunk(b"c")], 0, 41).unwrap();
        let got = n.remove_batch(bag, 10).unwrap();
        assert_eq!(got.chunks.len(), 3);
        assert_eq!(
            got.tags,
            vec![
                TagSegment {
                    run: 40,
                    start: 0,
                    len: 2
                },
                TagSegment {
                    run: 41,
                    start: 0,
                    len: 1
                },
            ]
        );
    }

    #[test]
    fn concurrent_bags_do_not_serialize_results() {
        // Smoke test: many threads on distinct bags all complete with
        // exact per-bag counts (the sharded-map correctness property; the
        // performance claim lives in the contended microbenches).
        let n = Arc::new(node());
        let handles: Vec<_> = (0..8u64)
            .map(|b| {
                let n = n.clone();
                std::thread::spawn(move || {
                    let bag = BagId(100 + b);
                    for i in 0..200u8 {
                        n.insert(bag, chunk(&[i])).unwrap();
                    }
                    let got = n.remove_batch(bag, 500).unwrap();
                    assert_eq!(got.chunks.len(), 200);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.stats().inserts.get(), 8 * 200);
    }

    #[test]
    fn sample_stays_consistent_under_concurrent_writers() {
        // The lock-free sample cells are updated under the bag mutex but
        // read without it; hammer one bag from four writer threads while
        // a sampler polls, then verify the quiesced sample is exact.
        let n = Arc::new(node());
        let bag = BagId(42);
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let n = n.clone();
                std::thread::spawn(move || {
                    let chunks: Vec<Chunk> = (0..16u8).map(|i| chunk(&[i])).collect();
                    for _ in 0..200 {
                        n.insert_batch(bag, &chunks).unwrap();
                        let _ = n.remove_batch(bag, 16).unwrap();
                    }
                })
            })
            .collect();
        let sampler = {
            let n = n.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let s = n.sample(bag).unwrap();
                    // Saturating read: never a torn underflow.
                    assert!(s.remaining_chunks <= s.total_chunks);
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        sampler.join().unwrap();
        // Racing removers can come up short mid-run; drain the remainder,
        // then the quiesced cells must be exact.
        while !n.remove_batch(bag, 1024).unwrap().chunks.is_empty() {}
        let s = n.sample(bag).unwrap();
        assert_eq!(s.total_chunks, 4 * 200 * 16);
        assert_eq!(s.removed_chunks, 4 * 200 * 16);
        assert_eq!(s.remaining_chunks, 0);
        assert_eq!(s.remaining_bytes, 0);
    }

    #[test]
    fn bag_sample_merge() {
        let mut a = BagSample {
            total_chunks: 2,
            removed_chunks: 1,
            remaining_chunks: 1,
            remaining_bytes: 10,
            total_bytes: 20,
            sealed: true,
        };
        let b = BagSample {
            total_chunks: 3,
            removed_chunks: 0,
            remaining_chunks: 3,
            remaining_bytes: 30,
            total_bytes: 30,
            sealed: false,
        };
        a.merge(&b);
        assert_eq!(a.total_chunks, 5);
        assert_eq!(a.remaining_bytes, 40);
        assert!(!a.sealed, "merge must AND the sealed flags");
    }
}
