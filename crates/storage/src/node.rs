//! A single storage node.
//!
//! Paper §4.3: bags are implemented at each storage node as append-only
//! files; an insert atomically appends a chunk, and a remove reads the next
//! chunk sequentially, advancing a file pointer so the same chunk is never
//! returned twice. End-of-file means all chunks stored *at this node* have
//! been removed. The bag API additionally supports rewinding (reuse of a
//! bag's contents), non-destructive reads (multiple workers scanning a full
//! bag concurrently), sampling the amount of data remaining, and garbage
//! collection.
//!
//! Concurrency: node state is sharded per bag. The bag directory is an
//! `RwLock<HashMap<BagId, Arc<BagFile>>>` — the hot path takes a *read*
//! lock only long enough to clone the bag's `Arc`, then operates under
//! that bag's own mutex. Concurrent workers touching different bags never
//! contend, and workers on the same bag contend only with each other,
//! which is what lets task clones (paper §4.2) scale with worker count.
//! Each stream keeps running `remaining_bytes` so [`StorageNode::sample`]
//! is O(1) instead of scanning unread chunks — the master polls samples
//! every heuristic tick, so sampling is control-plane-critical. The
//! counters the sampler reads are additionally mirrored into
//! cache-line-padded atomics outside the bag mutex (see `SampleCells`),
//! so polling under write load neither waits on the writers' lock nor
//! false-shares their cache lines.
//!
//! Durability ([`StorageNode::durable`], `SEGMENT.md`): a node given a
//! [`SegmentStore`] journals every append, consumed-pointer advance, and
//! lifecycle event to per-`(bag, origin)` segment logs under the same
//! per-bag locks, and [`StorageNode::restart_recover`] rebuilds bags,
//! running counters, and consumed-pointer state by scanning those logs —
//! the paper's disk-backed storage nodes, where a process crash loses no
//! acknowledged data. The journal doubles as a spill target: above a
//! configurable resident-byte threshold the node drops in-memory chunk
//! copies coldest-bag-first and re-reads them from their recorded frame
//! locations on demand, so bags larger than RAM degrade to disk serves
//! instead of falling over.
//!
//! The node also supports fault injection ([`StorageNode::fail`] /
//! [`StorageNode::recover`]) used by the fault-tolerance tests and the
//! Figure 11 reproduction, and a draining mode used for dynamic node
//! removal (paper §3.4).

use crate::error::StorageError;
use crate::segment::{self, SegmentLog, SegmentStore};
use hurricane_common::metrics::Counter;
use hurricane_common::{BagId, StorageNodeId};
use hurricane_format::Chunk;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::io;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A point-in-time estimate of a bag's contents at one node (or summed
/// across the cluster). This is the "sampling" operation the application
/// master uses to estimate `T`, the remaining task time, in the cloning
/// heuristic (paper §4.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BagSample {
    /// Chunks ever inserted.
    pub total_chunks: u64,
    /// Chunks already removed (pointer position).
    pub removed_chunks: u64,
    /// Chunks still removable.
    pub remaining_chunks: u64,
    /// Bytes still removable.
    pub remaining_bytes: u64,
    /// Bytes ever inserted. Spilled (non-resident) chunks count here in
    /// full — the running counters describe the bag's *contents*, not
    /// its memory footprint.
    pub total_bytes: u64,
    /// Bytes of this bag currently held in memory at the node (all
    /// streams, primary and mirrored). The gap to `total_bytes` is spill
    /// pressure: chunks serving from the segment logs instead of RAM.
    pub resident_bytes: u64,
    /// Whether the bag is sealed against further inserts.
    pub sealed: bool,
}

impl BagSample {
    /// Merges a per-node sample into a cluster-wide aggregate.
    pub fn merge(&mut self, other: &BagSample) {
        self.total_chunks += other.total_chunks;
        self.removed_chunks += other.removed_chunks;
        self.remaining_chunks += other.remaining_chunks;
        self.remaining_bytes += other.remaining_bytes;
        self.total_bytes += other.total_bytes;
        self.resident_bytes += other.resident_bytes;
        self.sealed &= other.sealed;
    }

    /// Fraction of inserted chunks already removed, in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.total_chunks == 0 {
            0.0
        } else {
            self.removed_chunks as f64 / self.total_chunks as f64
        }
    }
}

/// Outcome of a remove request at one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeRemove {
    /// A chunk was removed and is returned to the caller.
    Chunk(Chunk),
    /// This node currently has no unremoved chunk for the bag, but the bag
    /// is not sealed, so more may still arrive.
    Empty,
    /// This node has no unremoved chunk and the bag is sealed: end-of-file.
    Eof,
}

/// Outcome of a batched remove at one node (or, via the cluster, at one
/// replica group): the removed chunks plus the stream state where the
/// batch stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRemoveBatch {
    /// Chunks removed, in pointer order. May be empty.
    pub chunks: Vec<Chunk>,
    /// Identity of the removed chunks (run-contiguous ranges, in serve
    /// order). Mirrors forward these so backups consume exactly the
    /// served chunks — see [`TagSegment`].
    pub tags: Vec<TagSegment>,
    /// True when the stream had no further chunk at batch end (the batch
    /// came back short). False when the batch filled `max_n`.
    pub exhausted: bool,
    /// True when `exhausted` *and* the bag is sealed: end-of-file.
    pub eof: bool,
}

impl NodeRemoveBatch {
    /// Drops every chunk whose identity falls in `already` — chunks a
    /// claim ([`StorageNode::claim_consumed`]) revealed were delivered
    /// by another replica's concurrent serve — rebuilding `tags` to
    /// match the surviving chunks.
    ///
    /// `tags` expands positionally to one identity per chunk in serve
    /// order, which is how the kept chunks are matched back up.
    pub fn drop_already_consumed(&mut self, already: &[TagSegment]) {
        if already.is_empty() || self.chunks.is_empty() {
            return;
        }
        let hit = |run: u64, k: u32| {
            already
                .iter()
                .any(|s| s.run == run && k >= s.start && k - s.start < s.len)
        };
        let ids = self
            .tags
            .iter()
            .flat_map(|s| (0..s.len).map(move |j| (s.run, s.start + j)));
        let mut kept_tags = Vec::new();
        let mut kept = Vec::with_capacity(self.chunks.len());
        for (chunk, (run, k)) in std::mem::take(&mut self.chunks).into_iter().zip(ids) {
            if !hit(run, k) {
                push_tag(&mut kept_tags, (run, k));
                kept.push(chunk);
            }
        }
        self.chunks = kept;
        self.tags = kept_tags;
    }
}

/// Identity of a contiguous range of chunks from one insert run: chunks
/// `start .. start + len` of run `run`.
///
/// Every insert run (one batched append fanned out to a replica group)
/// is minted a process-globally unique id by [`next_run_id`], carried by
/// all replicas of that run. A chunk's identity within its origin stream
/// is `(run, k)` — its run id plus its position within the run. Pointer
/// mirroring names the *identities* a serving replica consumed rather
/// than a count, so replicas whose logs diverged after a partial
/// replicated insert (one replica missed a run the other recorded) can
/// never skip past a chunk the serving replica did not actually serve —
/// the double-serve hazard of the old count-based protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagSegment {
    /// Insert-run id ([`next_run_id`]).
    pub run: u64,
    /// First in-run position covered.
    pub start: u32,
    /// Number of consecutive positions covered.
    pub len: u32,
}

/// Mints a process-globally unique insert-run id (never 0).
///
/// Writers mint one id per logical insert run *before* the replica
/// fan-out, so every replica stores the run's chunks under identical
/// `(run, k)` tags. Retransmissions of the same request reuse the id —
/// a retransmitted run is the same logical run.
///
/// Run ids are unique within one writer process. The cluster model has a
/// single driver process minting all inserts (cluster metadata is
/// likewise process-local); a multi-driver deployment would need a
/// writer-id prefix here.
pub fn next_run_id() -> u64 {
    static NEXT_RUN: AtomicU64 = AtomicU64::new(1);
    NEXT_RUN.fetch_add(1, Ordering::Relaxed)
}

/// Location of one journaled frame in its stream's segment log: the
/// spill index entry that lets a dropped chunk be re-read on demand.
#[derive(Debug, Clone, Copy)]
struct FrameLoc {
    /// Offset of the frame's length prefix in the log.
    offset: u64,
    /// Total encoded frame length.
    frame_len: u32,
}

/// One entry of a stream's append-only log: the chunk itself when
/// resident, or just its journal location once spilled.
#[derive(Debug)]
enum Slot {
    /// Chunk held in memory; `at` is its journal location (present on
    /// durable nodes) so it can be spilled later.
    Resident { chunk: Chunk, at: Option<FrameLoc> },
    /// Chunk dropped from memory; `len` is its payload length, kept so
    /// byte accounting never needs a disk read.
    Spilled { at: FrameLoc, len: u32 },
}

impl Slot {
    fn len(&self) -> u64 {
        match self {
            Slot::Resident { chunk, .. } => chunk.len() as u64,
            Slot::Spilled { len, .. } => u64::from(*len),
        }
    }
}

/// One replicated chunk stream within a bag file: the chunks addressed
/// to one *origin* (primary node), each carrying its `(run, k)` identity
/// tag, with a consumption bitmap, a consumed-prefix pointer, and a
/// running count of unread bytes (keeping [`StorageNode::sample`] O(1)).
///
/// Consumption is *hole-tolerant*: a mirror of a remove served by
/// another replica marks the served chunks' tags consumed wherever they
/// sit in this log, which may leave unconsumed chunks *before* consumed
/// ones when replica logs diverged (a partial replicated insert landed
/// here but not at the serving replica). Serving skips consumed entries,
/// so the marooned chunks are still served exactly once on failover.
///
/// On a durable node the stream owns a [`SegmentLog`]: appends journal a
/// `DATA` frame (before the insert is acknowledged), serves and mirrors
/// journal `CONSUME` frames, rewinds journal `REWIND` — replaying the
/// log deterministically rebuilds the stream, consumed pointer included.
#[derive(Debug, Default)]
struct Stream {
    slots: Vec<Slot>,
    /// `(run, k)` identity per entry, parallel to `slots`.
    tags: Vec<(u64, u32)>,
    /// Per-entry consumption marks, parallel to `slots`. Set by a local
    /// serve or by a mirror naming the entry's tag; never cleared except
    /// by rewind/discard.
    consumed: Vec<bool>,
    /// Index of the first entry that may still be unconsumed (everything
    /// before it is consumed). Lazily advanced over the consumed prefix.
    next: usize,
    /// Entries not yet consumed, anywhere in the log (O(1) drain check).
    live: usize,
    /// Sum of unconsumed chunk lengths, maintained on every append,
    /// remove, mirror, and rewind.
    remaining_bytes: u64,
    /// Sum of all chunk lengths ever appended to this stream. Kept per
    /// stream (not per file) so sampling the own stream never counts
    /// bytes mirrored here for other primaries. Spilled chunks count in
    /// full.
    total_bytes: u64,
    /// This stream's segment log on a durable node; `None` on a
    /// memory-only node.
    log: Option<SegmentLog>,
    /// Identities named consumed (by a mirror or a claim) before this
    /// log recorded their insert — a claim racing a replicated insert
    /// still in flight, or a serve of a run this replica missed. An
    /// appended chunk matching one lands already consumed: whoever's
    /// serve named the identity delivered that chunk, so serving it
    /// here again would break exactly-once.
    pre_consumed: HashSet<(u64, u32)>,
    /// Set when an append to this stream's log failed: the log may end
    /// in torn bytes, so every further append is refused — a later
    /// success would bury the tear *inside* the log, past the recovery
    /// scan's torn-tail cut, corrupting everything after it.
    poisoned: bool,
}

/// What one [`Stream::consume_tags`] call did.
#[derive(Debug, Default)]
struct ConsumeOutcome {
    /// Entries newly marked consumed.
    newly: u64,
    /// Byte total of the newly consumed entries.
    bytes: u64,
    /// Identities newly remembered as pre-consumed (named by the
    /// request but never recorded in this log).
    pre: u64,
    /// Sub-segments of the request that were already consumed here
    /// before this call — each chunk a concurrent or earlier serve at
    /// this node delivered.
    already: Vec<TagSegment>,
}

/// Appends identity `(run, k)` to a segment list, extending the last
/// segment when run-contiguous.
fn push_tag(tags: &mut Vec<TagSegment>, (run, k): (u64, u32)) {
    match tags.last_mut() {
        Some(seg) if seg.run == run && seg.start + seg.len == k => seg.len += 1,
        _ => tags.push(TagSegment {
            run,
            start: k,
            len: 1,
        }),
    }
}

/// Upper bound on the identity positions one consume/claim request may
/// name and still get per-identity bookkeeping (already-consumed
/// reporting, pre-consume recording). Far above any legitimate serve
/// batch; a hostile request naming more falls back to the plain
/// containment scan so it cannot balloon memory.
const CLAIM_POSITIONS_CAP: u64 = 1 << 16;

impl Stream {
    /// Appends `bytes` (one or more encoded frames) to this stream's
    /// segment log, returning the offset they start at — or `None` on a
    /// memory-only stream. A failed append *poisons* the stream (see
    /// [`Stream::poisoned`]); callers journal **before** mutating any
    /// in-memory state, so a refused journal refuses the whole
    /// operation and the log never disagrees with served state.
    fn journal(&mut self, bytes: &[u8]) -> io::Result<Option<u64>> {
        let Some(log) = &self.log else {
            return Ok(None);
        };
        if self.poisoned {
            return Err(io::Error::other(
                "segment stream poisoned by an earlier failed append",
            ));
        }
        match log.append(bytes) {
            Ok(offset) => Ok(Some(offset)),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Appends a chunk already journaled at `at` (or memory-only when
    /// `None`). Returns the chunk's length (the caller's resident-byte
    /// delta) and whether the chunk landed already consumed (its
    /// identity was claimed before the insert arrived — see
    /// [`Stream::pre_consumed`]).
    fn push(&mut self, chunk: Chunk, run: u64, k: u32, at: Option<FrameLoc>) -> (u64, bool) {
        let len = chunk.len() as u64;
        self.total_bytes += len;
        self.slots.push(Slot::Resident { chunk, at });
        self.tags.push((run, k));
        let claimed = self.pre_consumed.remove(&(run, k));
        self.consumed.push(claimed);
        if !claimed {
            self.live += 1;
            self.remaining_bytes += len;
        }
        (len, claimed)
    }

    /// Rebuilds one entry from a recovery scan: the chunk stays in the
    /// log (recovered streams start fully spilled, resident bytes zero).
    fn recover_entry(&mut self, at: FrameLoc, len: u32, run: u64, k: u32) {
        self.total_bytes += u64::from(len);
        self.slots.push(Slot::Spilled { at, len });
        self.tags.push((run, k));
        let claimed = self.pre_consumed.remove(&(run, k));
        self.consumed.push(claimed);
        if !claimed {
            self.live += 1;
            self.remaining_bytes += u64::from(len);
        }
    }

    /// The chunk at `i`, re-read from the segment log when spilled. A
    /// failed or CRC-corrupt read-back is an error, not a panic — the
    /// caller refuses the serve and the chunk stays live for a retry
    /// (transient corruption) or a replica failover.
    fn chunk_at(&self, i: usize) -> io::Result<Chunk> {
        match &self.slots[i] {
            Slot::Resident { chunk, .. } => Ok(chunk.clone()),
            Slot::Spilled { at, .. } => {
                let log = self
                    .log
                    .as_ref()
                    .ok_or_else(|| io::Error::other("spilled slot without a log"))?;
                let frame = log.read(at.offset, at.frame_len as usize)?;
                let (_, _, payload) = segment::decode_data_frame(&frame).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        "spilled frame failed CRC on read-back",
                    )
                })?;
                Ok(Chunk::from_vec(payload.to_vec()))
            }
        }
    }

    /// Indices of the next up-to-`max_n` live entries past the consumed
    /// prefix, **without consuming them**. Serves scan first, then
    /// journal the consume, then commit ([`Stream::commit_consumed`]) —
    /// a failure in between leaves every scanned chunk still live.
    fn peek_live(&self, max_n: usize, picked: &mut Vec<usize>) {
        let mut i = self.next;
        while picked.len() < max_n && i < self.slots.len() {
            if !self.consumed[i] {
                picked.push(i);
            }
            i += 1;
        }
    }

    /// Marks the entries scanned by [`Stream::peek_live`] consumed and
    /// advances the counters. Infallible: all I/O happened earlier.
    fn commit_consumed(&mut self, picked: &[usize]) {
        for &i in picked {
            self.consumed[i] = true;
            self.live -= 1;
            self.remaining_bytes -= self.slots[i].len();
        }
        while self.next < self.slots.len() && self.consumed[self.next] {
            self.next += 1;
        }
    }

    /// Marks the chunks identified by `segs` consumed (the mirror of a
    /// remove served by another replica, or a fallback reader's claim).
    /// Entries already consumed are left alone — and reported back via
    /// [`ConsumeOutcome::already`] — so reapplying a mirror is
    /// idempotent and a claimer learns which chunks a concurrent serve
    /// here already delivered. Identities this log never recorded are
    /// remembered as pre-consumed: if their replicated insert lands
    /// later it arrives already consumed (the serve that named the
    /// identity delivered the chunk).
    fn consume_tags(&mut self, segs: &[TagSegment]) -> ConsumeOutcome {
        let mut out = ConsumeOutcome::default();
        let want: u64 = segs.iter().map(|s| u64::from(s.len)).sum();
        if want > CLAIM_POSITIONS_CAP {
            // Defensive path for requests naming absurdly many
            // identities: containment scan only, no per-identity
            // bookkeeping a hostile request could balloon.
            let mut i = self.next;
            while i < self.slots.len() && out.newly < want {
                if !self.consumed[i] {
                    let (run, k) = self.tags[i];
                    if segs
                        .iter()
                        .any(|s| s.run == run && k >= s.start && k - s.start < s.len)
                    {
                        self.consumed[i] = true;
                        self.live -= 1;
                        out.bytes += self.slots[i].len();
                        out.newly += 1;
                    }
                }
                i += 1;
            }
        } else {
            // Expand the request into its individual identities; the
            // set tracks which are still unaccounted for.
            let mut wanted: HashSet<(u64, u32)> = HashSet::with_capacity(want as usize);
            for seg in segs {
                for j in 0..seg.len {
                    if let Some(k) = seg.start.checked_add(j) {
                        wanted.insert((seg.run, k));
                    }
                }
            }
            // Fast scan from the consumed-prefix pointer — the common
            // mirror case names only entries at or past it.
            for i in self.next..self.slots.len() {
                if wanted.is_empty() {
                    break;
                }
                if wanted.remove(&self.tags[i]) {
                    if self.consumed[i] {
                        push_tag(&mut out.already, self.tags[i]);
                    } else {
                        self.consumed[i] = true;
                        self.live -= 1;
                        out.bytes += self.slots[i].len();
                        out.newly += 1;
                    }
                }
            }
            // Anything left sits in the consumed prefix (served here
            // earlier) or was never recorded here at all.
            if !wanted.is_empty() {
                for i in 0..self.next {
                    if wanted.remove(&self.tags[i]) {
                        push_tag(&mut out.already, self.tags[i]);
                    }
                }
                for id in wanted {
                    if self.pre_consumed.insert(id) {
                        out.pre += 1;
                    } else {
                        // A previous claim already named it: that
                        // claimer delivered (or is delivering) the
                        // chunk, so it counts as already consumed.
                        push_tag(&mut out.already, id);
                    }
                }
            }
        }
        while self.next < self.slots.len() && self.consumed[self.next] {
            self.next += 1;
        }
        self.remaining_bytes -= out.bytes;
        out
    }

    fn rewind(&mut self) {
        self.next = 0;
        self.consumed.iter_mut().for_each(|c| *c = false);
        self.live = self.slots.len();
        self.remaining_bytes = self.total_bytes;
        // A rewind restarts the bag's exactly-once epoch: claims made
        // against the previous pass no longer apply.
        self.pre_consumed.clear();
    }

    /// Drops in-memory copies of journaled chunks front-to-back until
    /// `need` bytes are freed (or the stream has nothing left to spill).
    /// Returns the bytes actually freed. Memory-only entries (no journal
    /// location) cannot be spilled and are skipped.
    fn spill(&mut self, need: &mut u64) -> u64 {
        let mut freed = 0u64;
        for slot in self.slots.iter_mut() {
            if *need == 0 {
                break;
            }
            if let Slot::Resident {
                chunk,
                at: Some(at),
            } = slot
            {
                let len = chunk.len() as u64;
                let spilled = Slot::Spilled {
                    at: *at,
                    len: chunk.len() as u32,
                };
                *slot = spilled;
                freed += len;
                *need = need.saturating_sub(len);
            }
        }
        freed
    }
}

/// One bag's state at one node: per-origin append-only chunk streams.
///
/// A node acting as primary stores chunks under its own index; acting as
/// a backup it stores mirrored chunks under the *primary's* index. Each
/// stream keeps its own read pointer — a backup's pointer is advanced by
/// mirror messages so that a failover resumes near the primary's
/// position, and a primary's reads can never consume (or double-serve)
/// another primary's mirrored data.
#[derive(Debug, Default)]
struct BagFileInner {
    streams: HashMap<u32, Stream>,
    sealed: bool,
    collected: bool,
    /// The bag's meta log on a durable node (seal/discard/collect
    /// events); `None` on a memory-only node.
    meta: Option<SegmentLog>,
    /// Set when a meta append failed: later meta appends are refused so
    /// a torn frame is never buried inside the log (see
    /// [`StorageNode::journal_meta`]).
    meta_poisoned: bool,
}

/// Lock-free mirrors of the node's *own* (primary) stream counters for
/// one bag, read by [`StorageNode::sample`] without touching the bag
/// mutex.
///
/// The master polls samples every heuristic tick while writers hammer
/// the same bag; routing that poll through the bag mutex made the O(1)
/// counter read 4.5× slower under 4-writer load than idle — the sampler
/// was paying lock handoffs and bouncing the mutex word's cache line.
/// These cells live on their **own cache line** (`align(64)`), separate
/// from the mutex word the writers hammer, so a poll is a handful of
/// relaxed loads with no lock traffic and no false sharing with the
/// lock.
///
/// Writers update the cells while holding the bag mutex, so writes never
/// race each other. The sampler takes a **seqlock snapshot**
/// ([`SampleCells::snapshot`]): each writer brackets its stores in a
/// version bump ([`SampleCells::update`]) and the sampler retries while
/// the version is odd or moved, so a sample never observes a
/// mid-update combination (`removed` bumped before `total`, say —
/// summed across nodes, such skew made cluster samples report
/// `removed > total` transiently). Writers never wait; only the
/// sampler spins, and only for the handful of stores a section holds.
///
/// `resident_bytes` is the exception on both counts: it counts **all**
/// streams (the bag's physical footprint, which is what spill pressure
/// is) and the spill sweep updates it outside the bag mutex, so its
/// value in a snapshot is coherent but not transactional with the
/// others — fine, since nothing relates it to the logical counters.
#[repr(align(64))]
#[derive(Debug, Default)]
struct SampleCells {
    /// Seqlock word: odd while a write section is open.
    version: AtomicU64,
    total_chunks: AtomicU64,
    removed_chunks: AtomicU64,
    remaining_bytes: AtomicU64,
    total_bytes: AtomicU64,
    /// See the type docs: all-streams physical footprint, updated
    /// outside write sections by the spill sweep.
    resident_bytes: AtomicU64,
    sealed: AtomicBool,
    collected: AtomicBool,
}

/// One internally-consistent reading of a bag's [`SampleCells`].
struct CellsSnapshot {
    total_chunks: u64,
    removed_chunks: u64,
    remaining_bytes: u64,
    total_bytes: u64,
    resident_bytes: u64,
    sealed: bool,
    collected: bool,
}

impl SampleCells {
    /// Runs `write` as one seqlock write section. Callers must hold the
    /// bag mutex (sections are serialized by it) and keep the section
    /// to plain counter stores — no I/O, no locks: the sampler spins
    /// while the section is open.
    fn update(&self, write: impl FnOnce()) {
        self.version.fetch_add(1, Ordering::Relaxed);
        fence(Ordering::Release);
        write();
        self.version.fetch_add(1, Ordering::Release);
    }

    /// Takes an internally-consistent snapshot of the cells, retrying
    /// while a write section is open or completed mid-read. Writers are
    /// never blocked; the retry loop is bounded in practice by write
    /// sections being a few relaxed stores long.
    fn snapshot(&self) -> CellsSnapshot {
        loop {
            let before = self.version.load(Ordering::Acquire);
            if before & 1 == 0 {
                let snap = CellsSnapshot {
                    total_chunks: self.total_chunks.load(Ordering::Relaxed),
                    removed_chunks: self.removed_chunks.load(Ordering::Relaxed),
                    remaining_bytes: self.remaining_bytes.load(Ordering::Relaxed),
                    total_bytes: self.total_bytes.load(Ordering::Relaxed),
                    resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
                    sealed: self.sealed.load(Ordering::Relaxed),
                    collected: self.collected.load(Ordering::Relaxed),
                };
                fence(Ordering::Acquire);
                if self.version.load(Ordering::Relaxed) == before {
                    return snap;
                }
            }
            std::hint::spin_loop();
        }
    }
}

/// One bag's state behind its own lock: operations on different bags at
/// the same node proceed fully in parallel. The sampler's counters are
/// mirrored outside the lock (see [`SampleCells`]).
#[derive(Debug, Default)]
struct BagFile {
    inner: Mutex<BagFileInner>,
    cells: SampleCells,
    /// Last-touch stamp from the node's logical clock; the spill policy
    /// evicts coldest-bag-first so hot bags stay resident.
    touch: AtomicU64,
}

/// Hot-path statistics for one storage node.
#[derive(Debug, Default)]
pub struct NodeStats {
    /// Chunks appended.
    pub inserts: Counter,
    /// Chunks removed (served to workers).
    pub removes: Counter,
    /// Remove probes that found nothing (the probing cost near bag
    /// emptiness discussed in paper §3.3).
    pub empty_probes: Counter,
    /// Bytes appended.
    pub bytes_in: Counter,
    /// Bytes served.
    pub bytes_out: Counter,
    /// Batched operations served (each covers ≥ 1 chunk).
    pub batch_ops: Counter,
}

/// A storage node: the Hurricane server process of paper §3.
pub struct StorageNode {
    id: StorageNodeId,
    down: AtomicBool,
    draining: AtomicBool,
    bags: RwLock<HashMap<BagId, Arc<BagFile>>>,
    stats: NodeStats,
    /// Segment-log medium on a durable node; `None` keeps the node
    /// memory-only with exactly the pre-durability behavior.
    store: Option<SegmentStore>,
    /// Resident-byte budget: above it, [`StorageNode::maybe_spill`]
    /// drops journaled in-memory chunk copies coldest-bag-first.
    spill_threshold: u64,
    /// Bytes of chunk payload currently resident across all bags.
    resident: AtomicU64,
    /// Logical clock for bag touch stamps (spill recency ordering).
    touch_clock: AtomicU64,
}

impl StorageNode {
    /// Creates an empty, healthy, memory-only node.
    pub fn new(id: StorageNodeId) -> Self {
        Self {
            id,
            down: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            bags: RwLock::new(HashMap::new()),
            stats: NodeStats::default(),
            store: None,
            spill_threshold: u64::MAX,
            resident: AtomicU64::new(0),
            touch_clock: AtomicU64::new(0),
        }
    }

    /// Creates a durable node journaling to `store`, recovering whatever
    /// state the store already holds (the restart path — a fresh data
    /// dir recovers to empty). `spill_threshold_bytes` bounds resident
    /// chunk memory; `u64::MAX` keeps everything resident.
    pub fn durable(
        id: StorageNodeId,
        store: SegmentStore,
        spill_threshold_bytes: u64,
    ) -> io::Result<Self> {
        let mut node = Self::new(id);
        node.store = Some(store);
        node.spill_threshold = spill_threshold_bytes;
        node.restart_recover()?;
        Ok(node)
    }

    /// This node's identifier.
    pub fn id(&self) -> StorageNodeId {
        self.id
    }

    /// Access to the node's statistics counters.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// Whether this node journals to a segment store.
    pub fn is_durable(&self) -> bool {
        self.store.is_some()
    }

    /// Bytes of chunk payload currently resident in memory across all
    /// bags (the quantity [`StorageNode::durable`]'s threshold bounds).
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// Marks the node as crashed: every subsequent operation fails with
    /// [`StorageError::NodeDown`] until [`StorageNode::recover`].
    pub fn fail(&self) {
        self.down.store(true, Ordering::Release);
    }

    /// Brings a crashed node back. Its in-memory data is intact — the
    /// process survived. A crash that loses the process's memory is
    /// [`StorageNode::crash_lose_memory`] followed by
    /// [`StorageNode::restart_recover`] from the segment store.
    pub fn recover(&self) {
        self.down.store(false, Ordering::Release);
    }

    /// Simulates losing the process: drops every bag and all resident
    /// chunk memory. What survives is exactly the segment store — the
    /// fault simulator's `Crash` uses this so a subsequent
    /// [`StorageNode::restart_recover`] proves recovery reads only the
    /// journal. Memory-only nodes lose everything.
    pub fn crash_lose_memory(&self) {
        self.bags.write().clear();
        self.resident.store(0, Ordering::Relaxed);
    }

    /// Rebuilds all bag state from the segment store: replays each bag's
    /// meta log (seal/discard/collect), then each origin stream's data
    /// log (appends, consumed-pointer advances, rewinds), truncating any
    /// torn tail a mid-append crash left. Recovered chunks start
    /// spilled — resident memory is zero until reads warm nothing (serves
    /// read through from the log). Memory-only nodes are a no-op.
    pub fn restart_recover(&self) -> io::Result<()> {
        let Some(store) = self.store.clone() else {
            return Ok(());
        };
        let mut found: HashMap<BagId, Vec<u32>> = HashMap::new();
        for name in store.list_logs()? {
            match segment::parse_log_name(&name) {
                Some((bag, segment::LogKind::Data(origin))) => {
                    found.entry(bag).or_default().push(origin);
                }
                Some((bag, segment::LogKind::Meta)) => {
                    found.entry(bag).or_default();
                }
                None => {}
            }
        }
        let mut bags = HashMap::with_capacity(found.len());
        for (bag, mut origins) in found {
            origins.sort_unstable();
            let file = self.new_bag_file(bag)?;
            {
                let mut inner = file.inner.lock();
                if let Some(meta) = inner.meta.clone() {
                    let bytes = meta.read_all()?;
                    let (events, valid) = segment::scan_meta(&bytes);
                    if valid < bytes.len() as u64 {
                        meta.truncate(valid)?;
                    }
                    for event in events {
                        match event {
                            segment::META_SEAL => inner.sealed = true,
                            segment::META_DISCARD => {
                                inner.sealed = false;
                                inner.collected = false;
                            }
                            segment::META_COLLECT => inner.collected = true,
                            _ => {}
                        }
                    }
                }
                for origin in origins {
                    let log = store.open_log(&segment::data_log_name(bag, origin))?;
                    let bytes = log.read_all()?;
                    let (frames, valid) = segment::scan(&bytes);
                    if valid < bytes.len() as u64 {
                        log.truncate(valid)?;
                    }
                    let mut stream = Stream {
                        log: Some(log),
                        ..Stream::default()
                    };
                    for frame in frames {
                        match frame.record {
                            segment::Record::Data {
                                run,
                                k,
                                payload_len,
                            } => stream.recover_entry(
                                FrameLoc {
                                    offset: frame.offset,
                                    frame_len: frame.frame_len,
                                },
                                payload_len,
                                run,
                                k,
                            ),
                            segment::Record::Consume(tags) => {
                                stream.consume_tags(&tags);
                            }
                            segment::Record::Rewind => stream.rewind(),
                        }
                    }
                    inner.streams.insert(origin, stream);
                }
                let cells = &file.cells;
                cells.update(|| {
                    cells.sealed.store(inner.sealed, Ordering::Relaxed);
                    cells.collected.store(inner.collected, Ordering::Relaxed);
                    if let Some(own) = inner.streams.get(&self.id.0) {
                        let consumed = (own.slots.len() - own.live) as u64;
                        cells
                            .total_chunks
                            .store(own.slots.len() as u64, Ordering::Relaxed);
                        cells.removed_chunks.store(consumed, Ordering::Relaxed);
                        cells
                            .remaining_bytes
                            .store(own.remaining_bytes, Ordering::Relaxed);
                        cells.total_bytes.store(own.total_bytes, Ordering::Relaxed);
                    }
                });
            }
            bags.insert(bag, Arc::new(file));
        }
        *self.bags.write() = bags;
        self.resident.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// Flushes every open segment log to stable storage (the fsync a
    /// graceful shutdown owes; routine appends ride the OS page cache,
    /// which survives a process kill but not a host failure).
    pub fn sync_all(&self) -> io::Result<()> {
        let files: Vec<Arc<BagFile>> = self.bags.read().values().cloned().collect();
        for file in files {
            let inner = file.inner.lock();
            if let Some(meta) = &inner.meta {
                meta.sync()?;
            }
            for stream in inner.streams.values() {
                if let Some(log) = &stream.log {
                    log.sync()?;
                }
            }
        }
        Ok(())
    }

    /// Returns whether the node is currently down.
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::Acquire)
    }

    /// Puts the node into draining mode: inserts are rejected, removes
    /// still served (paper §3.4, storage-node removal).
    pub fn start_draining(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// Returns whether the node is draining.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Returns true when every bag at this node has been fully removed,
    /// i.e. a draining node can now be decommissioned.
    pub fn is_drained(&self) -> Result<bool, StorageError> {
        self.check_up()?;
        let bags: Vec<Arc<BagFile>> = self.bags.read().values().cloned().collect();
        Ok(bags.iter().all(|b| {
            let inner = b.inner.lock();
            inner.collected || inner.streams.values().all(|s| s.live == 0)
        }))
    }

    fn check_up(&self) -> Result<(), StorageError> {
        if self.is_down() {
            Err(StorageError::NodeDown(self.id))
        } else {
            Ok(())
        }
    }

    /// Classifies a segment-log I/O failure at this node (`ENOSPC` →
    /// [`StorageError::DiskFull`], else [`StorageError::DiskIo`]).
    fn disk_err(&self, e: &io::Error) -> StorageError {
        StorageError::from_disk_io(self.id, e)
    }

    /// Builds a bag file, opening its meta log on a durable node.
    fn new_bag_file(&self, bag: BagId) -> io::Result<BagFile> {
        let file = BagFile::default();
        if let Some(store) = &self.store {
            file.inner.lock().meta = Some(store.open_log(&segment::meta_log_name(bag))?);
        }
        Ok(file)
    }

    /// Returns `bag`'s file, creating it on first touch. The read lock is
    /// the only directory-level synchronization on the hot path. A
    /// durable node that cannot open the bag's meta log refuses the
    /// operation with a typed disk error rather than caching a broken
    /// bag file.
    fn bag_file(&self, bag: BagId) -> Result<Arc<BagFile>, StorageError> {
        if let Some(file) = self.bags.read().get(&bag) {
            return Ok(file.clone());
        }
        let mut bags = self.bags.write();
        if let Some(file) = bags.get(&bag) {
            return Ok(file.clone());
        }
        let file = Arc::new(self.new_bag_file(bag).map_err(|e| self.disk_err(&e))?);
        bags.insert(bag, file.clone());
        Ok(file)
    }

    /// `inner.streams.entry(origin)`, attaching the stream's segment log
    /// on first touch of a durable node. Refuses with a typed disk
    /// error when the log cannot be opened.
    fn stream_entry<'a>(
        &self,
        inner: &'a mut BagFileInner,
        bag: BagId,
        origin: u32,
    ) -> Result<&'a mut Stream, StorageError> {
        let stream = inner.streams.entry(origin).or_default();
        if stream.log.is_none() {
            if let Some(store) = &self.store {
                stream.log = Some(
                    store
                        .open_log(&segment::data_log_name(bag, origin))
                        .map_err(|e| StorageError::from_disk_io(self.id, &e))?,
                );
            }
        }
        Ok(stream)
    }

    /// Stamps `file` as the most recently touched bag (spill recency).
    fn touch(&self, file: &BagFile) {
        if self.store.is_some() {
            file.touch.store(
                self.touch_clock.fetch_add(1, Ordering::Relaxed),
                Ordering::Relaxed,
            );
        }
    }

    /// Enforces the resident-byte budget: while over threshold, spills
    /// journaled chunks of the coldest bags (by touch stamp) back to
    /// their segment logs. Called outside the bag locks after inserts —
    /// the only operation that grows residency.
    fn maybe_spill(&self) {
        if self.store.is_none() {
            return;
        }
        let mut over = self
            .resident
            .load(Ordering::Relaxed)
            .saturating_sub(self.spill_threshold);
        if over == 0 {
            return;
        }
        let mut files: Vec<(u64, Arc<BagFile>)> = self
            .bags
            .read()
            .values()
            .map(|f| (f.touch.load(Ordering::Relaxed), f.clone()))
            .collect();
        files.sort_by_key(|(touched, _)| *touched);
        for (_, file) in files {
            if over == 0 {
                break;
            }
            let mut need = over;
            let mut freed = 0u64;
            {
                let mut inner = file.inner.lock();
                for stream in inner.streams.values_mut() {
                    if need == 0 {
                        break;
                    }
                    freed += stream.spill(&mut need);
                }
            }
            if freed > 0 {
                file.cells
                    .resident_bytes
                    .fetch_sub(freed, Ordering::Relaxed);
                self.resident.fetch_sub(freed, Ordering::Relaxed);
                over = over.saturating_sub(freed);
            }
        }
    }

    /// Appends `chunk` to `bag` (the atomic append of paper §4.3), with
    /// this node as the origin.
    pub fn insert(&self, bag: BagId, chunk: Chunk) -> Result<(), StorageError> {
        self.insert_from(bag, chunk, self.id.0)
    }

    /// Appends `chunk` tagged with the primary index it was addressed to.
    /// Backups use this so snapshots can reconstruct one copy per chunk.
    pub fn insert_from(&self, bag: BagId, chunk: Chunk, origin: u32) -> Result<(), StorageError> {
        self.insert_from_batch(bag, std::slice::from_ref(&chunk), origin)
    }

    /// Appends every chunk of `chunks` under one lock acquisition — the
    /// batched insert of the storage hot path. Either all chunks land or
    /// none do (the bag-state checks happen before the first append).
    pub fn insert_batch(&self, bag: BagId, chunks: &[Chunk]) -> Result<(), StorageError> {
        self.insert_from_batch(bag, chunks, self.id.0)
    }

    /// Batched [`StorageNode::insert_from`]. Mints a fresh run id for the
    /// appended chunks; replicated writers use
    /// [`StorageNode::insert_run`] instead so all replicas of one run
    /// share its id.
    pub fn insert_from_batch(
        &self,
        bag: BagId,
        chunks: &[Chunk],
        origin: u32,
    ) -> Result<(), StorageError> {
        self.insert_run(bag, chunks, origin, next_run_id())
    }

    /// Appends one insert run under its writer-minted id (see
    /// [`next_run_id`]): chunk `k` of the run is stored with identity
    /// tag `(run, k)`, identical at every replica the run is fanned out
    /// to — the identity pointer mirroring consumes by. On a durable
    /// node every chunk is journaled before the call returns, so an
    /// acknowledged insert survives a crash.
    pub fn insert_run(
        &self,
        bag: BagId,
        chunks: &[Chunk],
        origin: u32,
        run: u64,
    ) -> Result<(), StorageError> {
        self.check_up()?;
        if self.is_draining() {
            return Err(StorageError::NodeDraining(self.id));
        }
        if chunks.is_empty() {
            return Ok(());
        }
        let file = self.bag_file(bag)?;
        self.touch(&file);
        let mut inner = file.inner.lock();
        if inner.collected {
            return Err(StorageError::BagCollected(bag));
        }
        if inner.sealed {
            return Err(StorageError::BagSealed(bag));
        }
        let mut bytes = 0u64;
        let mut claimed = 0u64;
        let mut claimed_bytes = 0u64;
        let stream = self.stream_entry(&mut inner, bag, origin)?;
        // Journal the whole run as one append *before* touching any
        // in-memory state: a refused or short append fails the insert
        // cleanly with nothing landed (all-or-nothing), and the caller
        // re-routes the batch to a healthy node.
        let locs: Option<Vec<FrameLoc>> = if stream.log.is_some() {
            let mut buf = Vec::new();
            let mut locs = Vec::with_capacity(chunks.len());
            for (k, chunk) in chunks.iter().enumerate() {
                let start = buf.len() as u64;
                segment::data_frame_into(run, k as u32, chunk.bytes(), &mut buf);
                locs.push((start, (buf.len() as u64 - start) as u32));
            }
            let base = stream
                .journal(&buf)
                .map_err(|e| self.disk_err(&e))?
                .unwrap_or(0);
            Some(
                locs.into_iter()
                    .map(|(start, frame_len)| FrameLoc {
                        offset: base + start,
                        frame_len,
                    })
                    .collect(),
            )
        } else {
            None
        };
        for (k, chunk) in chunks.iter().enumerate() {
            let at = locs.as_ref().map(|l| l[k]);
            let (len, was_claimed) = stream.push(chunk.clone(), run, k as u32, at);
            bytes += len;
            if was_claimed {
                claimed += 1;
                claimed_bytes += len;
            }
        }
        if origin == self.id.0 {
            let cells = &file.cells;
            cells.update(|| {
                cells
                    .total_chunks
                    .fetch_add(chunks.len() as u64, Ordering::Relaxed);
                cells.total_bytes.fetch_add(bytes, Ordering::Relaxed);
                cells
                    .remaining_bytes
                    .fetch_add(bytes - claimed_bytes, Ordering::Relaxed);
                cells.removed_chunks.fetch_add(claimed, Ordering::Relaxed);
            });
        }
        file.cells
            .resident_bytes
            .fetch_add(bytes, Ordering::Relaxed);
        drop(inner);
        self.resident.fetch_add(bytes, Ordering::Relaxed);
        self.stats.bytes_in.add(bytes);
        self.stats.inserts.add(chunks.len() as u64);
        self.stats.batch_ops.incr();
        self.maybe_spill();
        Ok(())
    }

    /// Removes the next chunk of `bag`'s own (primary) stream here.
    pub fn remove(&self, bag: BagId) -> Result<NodeRemove, StorageError> {
        let own = self.id.0;
        self.remove_from(bag, own)
    }

    /// Removes the next chunk of the stream addressed to primary
    /// `origin` — the failover read path when `origin`'s node is down.
    ///
    /// Dedicated single-chunk path (no batch `Vec`): the unbatched remove
    /// is still what probe loops issue near bag emptiness, so it must not
    /// allocate.
    pub fn remove_from(&self, bag: BagId, origin: u32) -> Result<NodeRemove, StorageError> {
        self.check_up()?;
        let file = self.bag_file(bag)?;
        self.touch(&file);
        let mut inner = file.inner.lock();
        if inner.collected {
            return Err(StorageError::BagCollected(bag));
        }
        let sealed = inner.sealed;
        let stream = self.stream_entry(&mut inner, bag, origin)?;
        // Scan (without consuming) → read → journal → commit: a failed
        // read-back or consume journal refuses the serve with the chunk
        // still live.
        let mut i = stream.next;
        while i < stream.slots.len() && stream.consumed[i] {
            i += 1;
        }
        let picked = (i < stream.slots.len()).then_some(i);
        match picked {
            Some(i) => {
                let chunk = stream.chunk_at(i).map_err(|e| self.disk_err(&e))?;
                let (run, k) = stream.tags[i];
                if stream.log.is_some() {
                    stream
                        .journal(&segment::consume_frame(&[TagSegment {
                            run,
                            start: k,
                            len: 1,
                        }]))
                        .map_err(|e| self.disk_err(&e))?;
                }
                stream.commit_consumed(&[i]);
                if origin == self.id.0 {
                    let cells = &file.cells;
                    cells.update(|| {
                        cells.removed_chunks.fetch_add(1, Ordering::Relaxed);
                        cells
                            .remaining_bytes
                            .fetch_sub(chunk.len() as u64, Ordering::Relaxed);
                    });
                }
                drop(inner);
                self.stats.removes.incr();
                self.stats.bytes_out.add(chunk.len() as u64);
                Ok(NodeRemove::Chunk(chunk))
            }
            None => {
                drop(inner);
                self.stats.empty_probes.incr();
                Ok(if sealed {
                    NodeRemove::Eof
                } else {
                    NodeRemove::Empty
                })
            }
        }
    }

    /// Removes up to `max_n` chunks of `bag`'s own stream under one lock
    /// acquisition.
    pub fn remove_batch(&self, bag: BagId, max_n: usize) -> Result<NodeRemoveBatch, StorageError> {
        let own = self.id.0;
        self.remove_from_batch(bag, own, max_n)
    }

    /// Batched [`StorageNode::remove_from`]: removes up to `max_n` chunks
    /// of origin-stream `origin`, advancing the pointer once per chunk but
    /// paying the lock and directory lookup once per batch.
    pub fn remove_from_batch(
        &self,
        bag: BagId,
        origin: u32,
        max_n: usize,
    ) -> Result<NodeRemoveBatch, StorageError> {
        self.check_up()?;
        let file = self.bag_file(bag)?;
        self.touch(&file);
        let mut inner = file.inner.lock();
        if inner.collected {
            return Err(StorageError::BagCollected(bag));
        }
        let sealed = inner.sealed;
        let stream = self.stream_entry(&mut inner, bag, origin)?;
        // Scan (without consuming) → read → journal → commit, as in
        // [`StorageNode::remove_from`]: any disk failure refuses the
        // whole batch with every chunk still live.
        let mut picked = Vec::new();
        stream.peek_live(max_n, &mut picked);
        let mut chunks = Vec::with_capacity(picked.len());
        let mut tags: Vec<TagSegment> = Vec::new();
        let mut bytes = 0u64;
        for &i in &picked {
            let chunk = stream.chunk_at(i).map_err(|e| self.disk_err(&e))?;
            bytes += chunk.len() as u64;
            chunks.push(chunk);
            push_tag(&mut tags, stream.tags[i]);
        }
        if !tags.is_empty() && stream.log.is_some() {
            stream
                .journal(&segment::consume_frame(&tags))
                .map_err(|e| self.disk_err(&e))?;
        }
        stream.commit_consumed(&picked);
        let exhausted = chunks.len() < max_n;
        if origin == self.id.0 && !chunks.is_empty() {
            let cells = &file.cells;
            cells.update(|| {
                cells
                    .removed_chunks
                    .fetch_add(chunks.len() as u64, Ordering::Relaxed);
                cells.remaining_bytes.fetch_sub(bytes, Ordering::Relaxed);
            });
        }
        drop(inner);
        if chunks.is_empty() {
            self.stats.empty_probes.incr();
        } else {
            self.stats.removes.add(chunks.len() as u64);
            self.stats.bytes_out.add(bytes);
            self.stats.batch_ops.incr();
        }
        Ok(NodeRemoveBatch {
            chunks,
            tags,
            exhausted,
            eof: exhausted && sealed,
        })
    }

    /// Marks the chunks identified by `tags` consumed in origin-stream
    /// `origin` without returning data. Used to mirror a serving
    /// replica's remove onto the others so a failover resumes from the
    /// right position (paper §4.4: "Each bag ... is replicated along with
    /// bag state, such as the current file pointer").
    ///
    /// Consuming by *identity* rather than count makes the mirror safe
    /// against divergent replica logs: chunks this log holds that the
    /// serving replica missed stay live, reapplying the same mirror (a
    /// retransmission) is idempotent, and tags this log never recorded
    /// are remembered as pre-consumed so a late-arriving replicated
    /// insert of the same identity lands already consumed instead of
    /// being double-served. The same properties make the journaled
    /// mirror replay-safe: recovery re-applies the full requested tag
    /// set against the same stream state and marks the same entries.
    pub fn mirror_consumed(
        &self,
        bag: BagId,
        origin: u32,
        tags: &[TagSegment],
    ) -> Result<(), StorageError> {
        self.consume_impl(bag, origin, tags).map(|_| ())
    }

    /// Marks the chunks identified by `tags` consumed like
    /// [`StorageNode::mirror_consumed`] and reports back which of them
    /// were **already** consumed here before the call.
    ///
    /// This is the fallback-serve reconciliation step: a reader that
    /// found this replica empty and then received chunks from another
    /// replica claims their identities here before delivering. Segments
    /// echoed back were concurrently served *by this node* — another
    /// reader already has those chunks, so the claimer must drop them.
    /// Identities this log has never recorded (a run that landed only
    /// at the serving replica) claim nothing, pre-consume their slot,
    /// and are not echoed — the claimer delivers those chunks.
    pub fn claim_consumed(
        &self,
        bag: BagId,
        origin: u32,
        tags: &[TagSegment],
    ) -> Result<Vec<TagSegment>, StorageError> {
        self.consume_impl(bag, origin, tags).map(|o| o.already)
    }

    /// Shared body of [`StorageNode::mirror_consumed`] and
    /// [`StorageNode::claim_consumed`]: consume under the bag lock,
    /// journal when anything changed, maintain the own-stream counters.
    fn consume_impl(
        &self,
        bag: BagId,
        origin: u32,
        tags: &[TagSegment],
    ) -> Result<ConsumeOutcome, StorageError> {
        self.check_up()?;
        let file = self.bag_file(bag)?;
        let mut inner = file.inner.lock();
        let stream = self.stream_entry(&mut inner, bag, origin)?;
        // Journal before mutating: a refused journal refuses the whole
        // mirror/claim. Replaying the full tag set is idempotent, so
        // journaling even a no-change request is safe (and cheaper than
        // pre-scanning to find out).
        if !tags.is_empty() && stream.log.is_some() {
            stream
                .journal(&segment::consume_frame(tags))
                .map_err(|e| self.disk_err(&e))?;
        }
        let outcome = stream.consume_tags(tags);
        if origin == self.id.0 {
            let cells = &file.cells;
            cells.update(|| {
                cells
                    .removed_chunks
                    .fetch_add(outcome.newly, Ordering::Relaxed);
                cells
                    .remaining_bytes
                    .fetch_sub(outcome.bytes, Ordering::Relaxed);
            });
        }
        Ok(outcome)
    }

    /// Reads chunk `index` without consuming it. Supports the "multiple
    /// workers read an entire bag concurrently" access mode (paper §4.3),
    /// e.g. broadcasting the small relation of a hash join.
    pub fn read_at(&self, bag: BagId, index: usize) -> Result<Option<Chunk>, StorageError> {
        self.check_up()?;
        let file = self.bag_file(bag)?;
        let inner = file.inner.lock();
        if inner.collected {
            return Err(StorageError::BagCollected(bag));
        }
        let own = self.id.0;
        inner
            .streams
            .get(&own)
            .filter(|s| index < s.slots.len())
            .map(|s| s.chunk_at(index).map_err(|e| self.disk_err(&e)))
            .transpose()
    }

    /// Returns a copy of every chunk of `bag` stored here, regardless of the
    /// read pointer. Used to replay the done work bag on master recovery.
    pub fn snapshot(&self, bag: BagId) -> Result<Vec<Chunk>, StorageError> {
        self.check_up()?;
        let file = self.bag_file(bag)?;
        let inner = file.inner.lock();
        if inner.collected {
            return Err(StorageError::BagCollected(bag));
        }
        inner
            .streams
            .values()
            .flat_map(|s| (0..s.slots.len()).map(move |i| s.chunk_at(i)))
            .collect::<io::Result<Vec<Chunk>>>()
            .map_err(|e| self.disk_err(&e))
    }

    /// Returns every chunk of `bag` stored here whose origin is `origin`.
    /// A backup serving a snapshot for a dead primary filters to exactly
    /// the chunks it mirrors for that primary.
    pub fn snapshot_from(&self, bag: BagId, origin: u32) -> Result<Vec<Chunk>, StorageError> {
        self.check_up()?;
        let file = self.bag_file(bag)?;
        let inner = file.inner.lock();
        if inner.collected {
            return Err(StorageError::BagCollected(bag));
        }
        inner
            .streams
            .get(&origin)
            .map(|s| {
                (0..s.slots.len())
                    .map(|i| s.chunk_at(i))
                    .collect::<io::Result<Vec<Chunk>>>()
            })
            .unwrap_or_else(|| Ok(Vec::new()))
            .map_err(|e| self.disk_err(&e))
    }

    /// Seals `bag`: no further inserts. Sealing is what turns "empty" into
    /// "end-of-file" and lets workers terminate (paper §3.1).
    pub fn seal(&self, bag: BagId) -> Result<(), StorageError> {
        self.check_up()?;
        let file = self.bag_file(bag)?;
        let mut inner = file.inner.lock();
        if !inner.sealed {
            // Journal before mutating: a bag whose seal cannot be made
            // durable is not sealed.
            Self::journal_meta(&mut inner, segment::META_SEAL).map_err(|e| self.disk_err(&e))?;
            inner.sealed = true;
        }
        let cells = &file.cells;
        cells.update(|| cells.sealed.store(true, Ordering::Relaxed));
        Ok(())
    }

    /// Appends one lifecycle event to the bag's meta log, with the same
    /// poison rule as [`Stream::journal`]: a failed append refuses every
    /// later meta append so a tear is never buried inside the log.
    fn journal_meta(inner: &mut BagFileInner, tag: u8) -> io::Result<()> {
        let Some(meta) = &inner.meta else {
            return Ok(());
        };
        if inner.meta_poisoned {
            return Err(io::Error::other(
                "meta log poisoned by an earlier failed append",
            ));
        }
        if let Err(e) = meta.append(&segment::meta_frame(tag)) {
            inner.meta_poisoned = true;
            return Err(e);
        }
        Ok(())
    }

    /// Resets the read pointer to the beginning ("reusing the contents of a
    /// bag", paper §4.3; also used to rewind input bags when recovering
    /// from a compute-node failure, §4.4).
    pub fn rewind(&self, bag: BagId) -> Result<(), StorageError> {
        self.check_up()?;
        let file = self.bag_file(bag)?;
        let mut inner = file.inner.lock();
        if inner.collected {
            return Err(StorageError::BagCollected(bag));
        }
        // Journal-then-rewind per stream. A mid-loop failure leaves a
        // partial rewind; the error propagates and the (idempotent)
        // rewind is retried by the caller's recovery machinery.
        for stream in inner.streams.values_mut() {
            if stream.log.is_some() {
                stream
                    .journal(&segment::rewind_frame())
                    .map_err(|e| self.disk_err(&e))?;
            }
            stream.rewind();
        }
        let cells = &file.cells;
        cells.update(|| {
            cells.removed_chunks.store(0, Ordering::Relaxed);
            cells
                .remaining_bytes
                .store(cells.total_bytes.load(Ordering::Relaxed), Ordering::Relaxed);
        });
        Ok(())
    }

    /// Discards all chunks of `bag` and reopens it for inserts. Used to
    /// clear the partial output bags of tasks restarted after a compute
    /// node failure (paper §4.4). On a durable node the segment logs are
    /// truncated, so the discard itself survives a restart.
    pub fn discard(&self, bag: BagId) -> Result<(), StorageError> {
        self.check_up()?;
        let file = self.bag_file(bag)?;
        let mut inner = file.inner.lock();
        // Truncate the data logs and journal the discard *before*
        // clearing memory: a disk failure refuses the discard with the
        // in-memory bag intact (the logs may be partially truncated —
        // the node is disk-sick and the caller routes around it).
        for stream in inner.streams.values() {
            if let Some(log) = &stream.log {
                log.truncate(0).map_err(|e| self.disk_err(&e))?;
            }
        }
        Self::journal_meta(&mut inner, segment::META_DISCARD).map_err(|e| self.disk_err(&e))?;
        inner.streams.clear();
        inner.sealed = false;
        inner.collected = false;
        let cells = &file.cells;
        let mut freed = 0;
        cells.update(|| {
            cells.total_chunks.store(0, Ordering::Relaxed);
            cells.removed_chunks.store(0, Ordering::Relaxed);
            cells.remaining_bytes.store(0, Ordering::Relaxed);
            cells.total_bytes.store(0, Ordering::Relaxed);
            cells.sealed.store(false, Ordering::Relaxed);
            cells.collected.store(false, Ordering::Relaxed);
            freed = cells.resident_bytes.swap(0, Ordering::Relaxed);
        });
        drop(inner);
        self.resident.fetch_sub(freed, Ordering::Relaxed);
        Ok(())
    }

    /// Garbage-collects `bag`: frees its chunks; subsequent access fails.
    pub fn collect(&self, bag: BagId) -> Result<(), StorageError> {
        self.check_up()?;
        let file = self.bag_file(bag)?;
        let mut inner = file.inner.lock();
        // Same ordering as [`StorageNode::discard`]: disk work first,
        // memory mutation only after it all succeeded.
        for stream in inner.streams.values() {
            if let Some(log) = &stream.log {
                log.truncate(0).map_err(|e| self.disk_err(&e))?;
            }
        }
        Self::journal_meta(&mut inner, segment::META_COLLECT).map_err(|e| self.disk_err(&e))?;
        inner.streams = HashMap::new();
        inner.collected = true;
        let cells = &file.cells;
        let mut freed = 0;
        cells.update(|| {
            cells.collected.store(true, Ordering::Relaxed);
            freed = cells.resident_bytes.swap(0, Ordering::Relaxed);
        });
        drop(inner);
        self.resident.fetch_sub(freed, Ordering::Relaxed);
        Ok(())
    }

    /// Samples `bag`'s state at this node. O(1) and **lock-free for the
    /// writers**: the running counters are mirrored into
    /// cache-line-padded atomic cells (`SampleCells`) outside the bag
    /// mutex and read through a seqlock snapshot, so the master's
    /// polling never contends with (or bounces cache lines against) the
    /// writers' lock — only the bag-directory read lock is touched —
    /// and the returned counters are internally consistent
    /// (`removed ≤ total`, exactly `remaining = total - removed`), so
    /// per-node samples sum to a consistent cluster sample.
    pub fn sample(&self, bag: BagId) -> Result<BagSample, StorageError> {
        self.check_up()?;
        let file = self.bag_file(bag)?;
        // Only the node's own (primary) stream is counted — chunks *and*
        // bytes: with replication, summing primaries across nodes yields
        // exact cluster-wide totals without double-counting backups.
        // `resident_bytes` is the exception (it reports this node's
        // physical footprint for the bag, mirrored streams included).
        let snap = file.cells.snapshot();
        if snap.collected {
            return Err(StorageError::BagCollected(bag));
        }
        Ok(BagSample {
            total_chunks: snap.total_chunks,
            removed_chunks: snap.removed_chunks,
            // Saturating only as a guard: a consistent snapshot never
            // has removed ahead of total.
            remaining_chunks: snap.total_chunks.saturating_sub(snap.removed_chunks),
            remaining_bytes: snap.remaining_bytes,
            total_bytes: snap.total_bytes,
            resident_bytes: snap.resident_bytes,
            sealed: snap.sealed,
        })
    }

    /// Number of distinct bags with state at this node.
    pub fn bag_count(&self) -> usize {
        self.bags.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(bytes: &[u8]) -> Chunk {
        Chunk::from_vec(bytes.to_vec())
    }

    fn node() -> StorageNode {
        StorageNode::new(StorageNodeId(0))
    }

    /// Samples racing a writer must never observe a mid-update counter
    /// combination: `removed` ahead of `total` (summed across nodes that
    /// skew made cluster samples report more removed than inserted), or
    /// `remaining` disagreeing with `total - removed`. Pins the seqlock
    /// snapshot in [`SampleCells`].
    #[test]
    fn samples_stay_internally_consistent_under_concurrent_load() {
        let n = node();
        let bag = BagId(33);
        std::thread::scope(|s| {
            let writer = s.spawn(|| {
                for round in 0..300u64 {
                    for v in 0..16u64 {
                        n.insert(bag, chunk(&(round * 16 + v).to_le_bytes()))
                            .unwrap();
                    }
                    let _ = n.remove_batch(bag, 16).unwrap();
                }
            });
            while !writer.is_finished() {
                let s = n.sample(bag).unwrap();
                assert!(
                    s.removed_chunks <= s.total_chunks,
                    "sample saw removed {} ahead of total {}",
                    s.removed_chunks,
                    s.total_chunks
                );
                assert_eq!(s.remaining_chunks, s.total_chunks - s.removed_chunks);
                assert!(s.remaining_bytes <= s.total_bytes);
            }
            writer.join().unwrap();
        });
        let s = n.sample(bag).unwrap();
        assert_eq!((s.total_chunks, s.removed_chunks), (4800, 4800));
    }

    #[test]
    fn insert_then_remove_fifo() {
        let n = node();
        let bag = BagId(1);
        n.insert(bag, chunk(b"a")).unwrap();
        n.insert(bag, chunk(b"b")).unwrap();
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(b"a")));
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(b"b")));
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Empty);
        n.seal(bag).unwrap();
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Eof);
    }

    #[test]
    fn exactly_once_per_chunk() {
        let n = node();
        let bag = BagId(1);
        for i in 0..100u8 {
            n.insert(bag, chunk(&[i])).unwrap();
        }
        n.seal(bag).unwrap();
        let mut seen = Vec::new();
        loop {
            match n.remove(bag).unwrap() {
                NodeRemove::Chunk(c) => seen.push(c.bytes()[0]),
                NodeRemove::Eof => break,
                NodeRemove::Empty => unreachable!("sealed bag cannot be Empty"),
            }
        }
        let expected: Vec<u8> = (0..100).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn sealed_bag_rejects_inserts() {
        let n = node();
        let bag = BagId(2);
        n.insert(bag, chunk(b"x")).unwrap();
        n.seal(bag).unwrap();
        assert_eq!(
            n.insert(bag, chunk(b"y")),
            Err(StorageError::BagSealed(bag))
        );
    }

    #[test]
    fn down_node_rejects_everything() {
        let n = node();
        let bag = BagId(3);
        n.insert(bag, chunk(b"x")).unwrap();
        n.fail();
        assert!(matches!(
            n.insert(bag, chunk(b"y")),
            Err(StorageError::NodeDown(_))
        ));
        assert!(matches!(n.remove(bag), Err(StorageError::NodeDown(_))));
        assert!(matches!(n.sample(bag), Err(StorageError::NodeDown(_))));
        n.recover();
        // Data survives the crash.
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(b"x")));
    }

    #[test]
    fn draining_rejects_inserts_serves_removes() {
        let n = node();
        let bag = BagId(4);
        n.insert(bag, chunk(b"x")).unwrap();
        n.start_draining();
        assert!(matches!(
            n.insert(bag, chunk(b"y")),
            Err(StorageError::NodeDraining(_))
        ));
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(b"x")));
        assert!(n.is_drained().unwrap());
    }

    #[test]
    fn rewind_replays_contents() {
        let n = node();
        let bag = BagId(5);
        n.insert(bag, chunk(b"x")).unwrap();
        assert!(matches!(n.remove(bag).unwrap(), NodeRemove::Chunk(_)));
        n.rewind(bag).unwrap();
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(b"x")));
    }

    #[test]
    fn rewind_restores_remaining_bytes() {
        let n = node();
        let bag = BagId(5);
        n.insert(bag, chunk(b"abc")).unwrap();
        n.insert(bag, chunk(b"de")).unwrap();
        n.remove(bag).unwrap();
        assert_eq!(n.sample(bag).unwrap().remaining_bytes, 2);
        n.rewind(bag).unwrap();
        assert_eq!(n.sample(bag).unwrap().remaining_bytes, 5);
    }

    #[test]
    fn discard_clears_and_reopens() {
        let n = node();
        let bag = BagId(6);
        n.insert(bag, chunk(b"x")).unwrap();
        n.seal(bag).unwrap();
        n.discard(bag).unwrap();
        let s = n.sample(bag).unwrap();
        assert_eq!(s.total_chunks, 0);
        assert!(!s.sealed);
        n.insert(bag, chunk(b"z")).unwrap();
    }

    #[test]
    fn collect_frees_and_blocks() {
        let n = node();
        let bag = BagId(7);
        n.insert(bag, chunk(b"x")).unwrap();
        n.collect(bag).unwrap();
        assert_eq!(n.remove(bag), Err(StorageError::BagCollected(bag)));
        assert_eq!(
            n.insert(bag, chunk(b"y")),
            Err(StorageError::BagCollected(bag))
        );
    }

    #[test]
    fn sample_tracks_pointer() {
        let n = node();
        let bag = BagId(8);
        n.insert(bag, chunk(b"abc")).unwrap();
        n.insert(bag, chunk(b"de")).unwrap();
        let s = n.sample(bag).unwrap();
        assert_eq!(s.total_chunks, 2);
        assert_eq!(s.remaining_bytes, 5);
        assert_eq!(s.resident_bytes, 5);
        assert_eq!(s.progress(), 0.0);
        n.remove(bag).unwrap();
        let s = n.sample(bag).unwrap();
        assert_eq!(s.removed_chunks, 1);
        assert_eq!(s.remaining_bytes, 2);
        assert_eq!(s.progress(), 0.5);
    }

    #[test]
    fn mirror_consumed_skips_served_chunks() {
        let n = node();
        let bag = BagId(9);
        n.insert_run(bag, &[chunk(b"a"), chunk(b"b")], 0, 700)
            .unwrap();
        n.mirror_consumed(
            bag,
            0,
            &[TagSegment {
                run: 700,
                start: 0,
                len: 1,
            }],
        )
        .unwrap();
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(b"b")));
    }

    #[test]
    fn snapshot_ignores_pointer() {
        let n = node();
        let bag = BagId(10);
        n.insert(bag, chunk(b"a")).unwrap();
        n.insert(bag, chunk(b"b")).unwrap();
        n.remove(bag).unwrap();
        let snap = n.snapshot(bag).unwrap();
        assert_eq!(snap.len(), 2);
    }

    #[test]
    fn read_at_is_nondestructive() {
        let n = node();
        let bag = BagId(11);
        n.insert(bag, chunk(b"a")).unwrap();
        assert_eq!(n.read_at(bag, 0).unwrap(), Some(chunk(b"a")));
        assert_eq!(n.read_at(bag, 1).unwrap(), None);
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(b"a")));
    }

    #[test]
    fn stats_count_traffic() {
        let n = node();
        let bag = BagId(12);
        n.insert(bag, chunk(b"abcd")).unwrap();
        n.remove(bag).unwrap();
        n.remove(bag).unwrap(); // Empty probe.
        assert_eq!(n.stats().inserts.get(), 1);
        assert_eq!(n.stats().removes.get(), 1);
        assert_eq!(n.stats().empty_probes.get(), 1);
        assert_eq!(n.stats().bytes_in.get(), 4);
        assert_eq!(n.stats().bytes_out.get(), 4);
    }

    #[test]
    fn insert_batch_lands_all_chunks_in_order() {
        let n = node();
        let bag = BagId(13);
        let chunks: Vec<Chunk> = (0..10u8).map(|i| chunk(&[i])).collect();
        n.insert_batch(bag, &chunks).unwrap();
        n.seal(bag).unwrap();
        let got = n.remove_batch(bag, 64).unwrap();
        assert_eq!(got.chunks, chunks);
        assert!(got.exhausted);
        assert!(got.eof);
        assert_eq!(n.stats().inserts.get(), 10);
        assert_eq!(n.stats().removes.get(), 10);
    }

    #[test]
    fn remove_batch_respects_max_n() {
        let n = node();
        let bag = BagId(14);
        for i in 0..10u8 {
            n.insert(bag, chunk(&[i])).unwrap();
        }
        let got = n.remove_batch(bag, 4).unwrap();
        assert_eq!(got.chunks.len(), 4);
        assert!(!got.exhausted);
        assert!(!got.eof);
        let rest = n.remove_batch(bag, 100).unwrap();
        assert_eq!(rest.chunks.len(), 6);
        assert!(rest.exhausted);
        assert!(!rest.eof, "unsealed bag never reports eof");
    }

    #[test]
    fn remove_batch_on_empty_unsealed_is_empty_not_eof() {
        let n = node();
        let bag = BagId(15);
        let got = n.remove_batch(bag, 8).unwrap();
        assert!(got.chunks.is_empty());
        assert!(got.exhausted && !got.eof);
        n.seal(bag).unwrap();
        let got = n.remove_batch(bag, 8).unwrap();
        assert!(got.eof);
    }

    #[test]
    fn batch_insert_to_sealed_bag_is_atomic_noop() {
        let n = node();
        let bag = BagId(16);
        n.seal(bag).unwrap();
        let chunks = vec![chunk(b"a"), chunk(b"b")];
        assert_eq!(
            n.insert_batch(bag, &chunks),
            Err(StorageError::BagSealed(bag))
        );
        assert_eq!(n.stats().inserts.get(), 0, "no partial batch landed");
    }

    #[test]
    fn mirror_consumed_advances_in_bulk() {
        let n = node();
        let bag = BagId(17);
        let chunks: Vec<Chunk> = (0..5u8).map(|i| chunk(&[i])).collect();
        n.insert_run(bag, &chunks, 0, 900).unwrap();
        n.mirror_consumed(
            bag,
            0,
            &[TagSegment {
                run: 900,
                start: 0,
                len: 3,
            }],
        )
        .unwrap();
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(&[3])));
        assert_eq!(n.sample(bag).unwrap().removed_chunks, 4);
    }

    #[test]
    fn mirror_consumed_is_idempotent() {
        let n = node();
        let bag = BagId(18);
        let chunks: Vec<Chunk> = (0..4u8).map(|i| chunk(&[i])).collect();
        n.insert_run(bag, &chunks, 0, 901).unwrap();
        let seg = TagSegment {
            run: 901,
            start: 0,
            len: 2,
        };
        n.mirror_consumed(bag, 0, &[seg]).unwrap();
        n.mirror_consumed(bag, 0, &[seg]).unwrap(); // Retransmission.
        assert_eq!(n.sample(bag).unwrap().removed_chunks, 2);
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(&[2])));
    }

    #[test]
    fn mirror_consumed_tolerates_divergent_logs() {
        // A backup recorded run 10 (a partial replicated insert the
        // primary missed) *before* run 11. The primary serves run 11's
        // chunks; mirroring that consumption must leave run 10's chunk
        // live here — the old count-based skip would have consumed it.
        let n = node();
        let bag = BagId(19);
        n.insert_run(bag, &[chunk(b"X")], 0, 10).unwrap();
        n.insert_run(bag, &[chunk(b"y"), chunk(b"z")], 0, 11)
            .unwrap();
        n.mirror_consumed(
            bag,
            0,
            &[TagSegment {
                run: 11,
                start: 0,
                len: 2,
            }],
        )
        .unwrap();
        // Failover serves exactly the marooned chunk, once.
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(b"X")));
        n.seal(bag).unwrap();
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Eof);
    }

    #[test]
    fn mirror_consumed_ignores_unknown_tags() {
        // Tags for a run this log never recorded (it missed the insert)
        // are a no-op; the chunks it does hold stay live.
        let n = node();
        let bag = BagId(20);
        n.insert_run(bag, &[chunk(b"a")], 0, 30).unwrap();
        n.mirror_consumed(
            bag,
            0,
            &[TagSegment {
                run: 31,
                start: 0,
                len: 5,
            }],
        )
        .unwrap();
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(b"a")));
    }

    #[test]
    fn claim_consumed_reports_already_served_chunks() {
        let n = node();
        let bag = BagId(26);
        n.insert_run(bag, &[chunk(b"a"), chunk(b"b"), chunk(b"c")], 0, 50)
            .unwrap();
        // Two chunks served locally (by "another reader").
        assert_eq!(n.remove_batch(bag, 2).unwrap().chunks.len(), 2);
        let already = n
            .claim_consumed(
                bag,
                0,
                &[TagSegment {
                    run: 50,
                    start: 0,
                    len: 3,
                }],
            )
            .unwrap();
        let hit = |k: u32| {
            already
                .iter()
                .any(|s| s.run == 50 && k >= s.start && k - s.start < s.len)
        };
        assert!(hit(0) && hit(1), "served chunks must be echoed back");
        assert!(!hit(2), "the live chunk is newly claimed, not echoed");
        // The claim consumed the third chunk: nothing is left to serve.
        n.seal(bag).unwrap();
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Eof);
    }

    #[test]
    fn claimed_identity_lands_consumed_when_insert_arrives_late() {
        // A claim can race the replicated insert it names: the claim
        // runs first, the insert lands after. The chunk must arrive
        // already consumed — its identity was served elsewhere.
        let n = node();
        let bag = BagId(27);
        let seg = TagSegment {
            run: 51,
            start: 0,
            len: 1,
        };
        assert!(n.claim_consumed(bag, 0, &[seg]).unwrap().is_empty());
        n.insert_run(bag, &[chunk(b"late")], 0, 51).unwrap();
        let s = n.sample(bag).unwrap();
        assert_eq!((s.total_chunks, s.removed_chunks), (1, 1));
        assert_eq!(s.remaining_bytes, 0);
        n.seal(bag).unwrap();
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Eof);
        // Re-claiming the now-landed identity reports it consumed.
        assert_eq!(n.claim_consumed(bag, 0, &[seg]).unwrap(), vec![seg]);
    }

    #[test]
    fn remove_batch_reports_run_tags() {
        let n = node();
        let bag = BagId(21);
        n.insert_run(bag, &[chunk(b"a"), chunk(b"b")], 0, 40)
            .unwrap();
        n.insert_run(bag, &[chunk(b"c")], 0, 41).unwrap();
        let got = n.remove_batch(bag, 10).unwrap();
        assert_eq!(got.chunks.len(), 3);
        assert_eq!(
            got.tags,
            vec![
                TagSegment {
                    run: 40,
                    start: 0,
                    len: 2
                },
                TagSegment {
                    run: 41,
                    start: 0,
                    len: 1
                },
            ]
        );
    }

    #[test]
    fn concurrent_bags_do_not_serialize_results() {
        // Smoke test: many threads on distinct bags all complete with
        // exact per-bag counts (the sharded-map correctness property; the
        // performance claim lives in the contended microbenches).
        let n = Arc::new(node());
        let handles: Vec<_> = (0..8u64)
            .map(|b| {
                let n = n.clone();
                std::thread::spawn(move || {
                    let bag = BagId(100 + b);
                    for i in 0..200u8 {
                        n.insert(bag, chunk(&[i])).unwrap();
                    }
                    let got = n.remove_batch(bag, 500).unwrap();
                    assert_eq!(got.chunks.len(), 200);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.stats().inserts.get(), 8 * 200);
    }

    #[test]
    fn sample_stays_consistent_under_concurrent_writers() {
        // The lock-free sample cells are updated under the bag mutex but
        // read without it; hammer one bag from four writer threads while
        // a sampler polls, then verify the quiesced sample is exact.
        let n = Arc::new(node());
        let bag = BagId(42);
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let n = n.clone();
                std::thread::spawn(move || {
                    let chunks: Vec<Chunk> = (0..16u8).map(|i| chunk(&[i])).collect();
                    for _ in 0..200 {
                        n.insert_batch(bag, &chunks).unwrap();
                        let _ = n.remove_batch(bag, 16).unwrap();
                    }
                })
            })
            .collect();
        let sampler = {
            let n = n.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let s = n.sample(bag).unwrap();
                    // Saturating read: never a torn underflow.
                    assert!(s.remaining_chunks <= s.total_chunks);
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        sampler.join().unwrap();
        // Racing removers can come up short mid-run; drain the remainder,
        // then the quiesced cells must be exact.
        while !n.remove_batch(bag, 1024).unwrap().chunks.is_empty() {}
        let s = n.sample(bag).unwrap();
        assert_eq!(s.total_chunks, 4 * 200 * 16);
        assert_eq!(s.removed_chunks, 4 * 200 * 16);
        assert_eq!(s.remaining_chunks, 0);
        assert_eq!(s.remaining_bytes, 0);
    }

    #[test]
    fn bag_sample_merge() {
        let mut a = BagSample {
            total_chunks: 2,
            removed_chunks: 1,
            remaining_chunks: 1,
            remaining_bytes: 10,
            total_bytes: 20,
            resident_bytes: 20,
            sealed: true,
        };
        let b = BagSample {
            total_chunks: 3,
            removed_chunks: 0,
            remaining_chunks: 3,
            remaining_bytes: 30,
            total_bytes: 30,
            resident_bytes: 5,
            sealed: false,
        };
        a.merge(&b);
        assert_eq!(a.total_chunks, 5);
        assert_eq!(a.remaining_bytes, 40);
        assert_eq!(a.resident_bytes, 25);
        assert!(!a.sealed, "merge must AND the sealed flags");
    }

    // -- durability ------------------------------------------------------

    fn durable_node(store: &SegmentStore) -> StorageNode {
        StorageNode::durable(StorageNodeId(0), store.clone(), u64::MAX).unwrap()
    }

    #[test]
    fn durable_restart_recovers_contents_and_pointer() {
        let store = SegmentStore::mem();
        let bag = BagId(1);
        {
            let n = durable_node(&store);
            for i in 0..5u8 {
                n.insert(bag, chunk(&[i])).unwrap();
            }
            assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(&[0])));
            assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(&[1])));
        }
        let n = durable_node(&store);
        let s = n.sample(bag).unwrap();
        assert_eq!(s.total_chunks, 5);
        assert_eq!(s.removed_chunks, 2);
        assert_eq!(s.remaining_bytes, 3);
        assert_eq!(s.resident_bytes, 0, "recovered chunks start spilled");
        // The consumed pointer survived: the next serve is chunk 2.
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(&[2])));
    }

    #[test]
    fn durable_restart_recovers_seal_and_mirror_state() {
        let store = SegmentStore::mem();
        let bag = BagId(2);
        {
            let n = durable_node(&store);
            n.insert_run(bag, &[chunk(b"a"), chunk(b"b")], 3, 500)
                .unwrap();
            n.mirror_consumed(
                bag,
                3,
                &[TagSegment {
                    run: 500,
                    start: 0,
                    len: 1,
                }],
            )
            .unwrap();
            n.seal(bag).unwrap();
        }
        let n = durable_node(&store);
        assert!(n.sample(bag).unwrap().sealed);
        // The mirrored stream's pointer survived: only "b" is live.
        let got = n.remove_from_batch(bag, 3, 10).unwrap();
        assert_eq!(got.chunks, vec![chunk(b"b")]);
        assert!(got.eof);
    }

    #[test]
    fn durable_restart_respects_rewind_and_discard() {
        let store = SegmentStore::mem();
        let bag = BagId(3);
        {
            let n = durable_node(&store);
            n.insert(bag, chunk(b"x")).unwrap();
            n.remove(bag).unwrap();
            n.rewind(bag).unwrap();
        }
        {
            let n = durable_node(&store);
            // Rewind survived: the consumed chunk is live again.
            assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(b"x")));
            n.discard(bag).unwrap();
            n.seal(bag).unwrap();
        }
        let n = durable_node(&store);
        let s = n.sample(bag).unwrap();
        assert_eq!(s.total_chunks, 0, "discard survived restart");
        assert!(s.sealed, "seal after discard survived restart");
    }

    #[test]
    fn crash_lose_memory_then_recover_round_trips() {
        let store = SegmentStore::mem();
        let bag = BagId(4);
        let n = durable_node(&store);
        n.insert(bag, chunk(b"hello")).unwrap();
        n.crash_lose_memory();
        assert_eq!(n.bag_count(), 0);
        n.restart_recover().unwrap();
        assert_eq!(n.remove(bag).unwrap(), NodeRemove::Chunk(chunk(b"hello")));
    }

    #[test]
    fn spill_bounds_resident_memory_and_serves_from_log() {
        let store = SegmentStore::mem();
        let n = StorageNode::durable(StorageNodeId(0), store, 256).unwrap();
        let bag = BagId(5);
        let payload = [7u8; 64];
        for _ in 0..32 {
            n.insert(bag, chunk(&payload)).unwrap();
        }
        // 2 KiB inserted under a 256-byte budget: residency is bounded by
        // the threshold plus at most one in-flight batch.
        assert!(
            n.resident_bytes() <= 256 + 64,
            "resident {} exceeds budget",
            n.resident_bytes()
        );
        let s = n.sample(bag).unwrap();
        assert_eq!(s.total_bytes, 32 * 64, "spilled chunks still count");
        assert!(s.resident_bytes <= 256 + 64);
        // Every chunk still serves, byte-exact, from the log.
        n.seal(bag).unwrap();
        let got = n.remove_batch(bag, 64).unwrap();
        assert_eq!(got.chunks.len(), 32);
        assert!(got.chunks.iter().all(|c| c.bytes() == payload));
        assert!(got.eof);
    }

    #[test]
    fn memory_only_node_never_spills() {
        let n = node();
        let bag = BagId(6);
        n.insert(bag, chunk(&[1u8; 128])).unwrap();
        assert!(!n.is_durable());
        assert_eq!(n.resident_bytes(), 128);
        assert_eq!(n.sample(bag).unwrap().resident_bytes, 128);
    }
}
