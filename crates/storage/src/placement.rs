//! Pseudorandom cyclic placement.
//!
//! Paper §3.3: "The insert chunk operation on a data bag writes the chunk
//! in a pseudorandom cyclic order across the storage nodes. ... the remove
//! operation by a worker requests a chunk in a pseudorandom cyclic order
//! across storage nodes. If it does not find a chunk at the node, it tries
//! the next storage node in the cyclic permutation."
//!
//! Each client walks its own seeded permutation, so aggregate load spreads
//! uniformly with zero coordination. This module is pure — no I/O — and is
//! the single implementation of the policy used by the threaded runtime
//! *and* the discrete-event simulator, so the two cannot drift apart.

use hurricane_common::DetRng;

/// An endlessly cycling pseudorandom permutation of `0..n`.
///
/// # Examples
///
/// ```
/// use hurricane_common::DetRng;
/// use hurricane_storage::placement::CyclicPlacement;
///
/// let mut p = CyclicPlacement::new(4, &mut DetRng::new(7));
/// let first_cycle: Vec<usize> = (0..4).map(|_| p.next_node()).collect();
/// let mut sorted = first_cycle.clone();
/// sorted.sort_unstable();
/// assert_eq!(sorted, vec![0, 1, 2, 3]); // Each node exactly once per cycle.
/// ```
#[derive(Debug, Clone)]
pub struct CyclicPlacement {
    perm: Vec<usize>,
    pos: usize,
}

impl CyclicPlacement {
    /// Creates a placement over `n` nodes using randomness from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`: placement over an empty cluster is meaningless.
    pub fn new(n: usize, rng: &mut DetRng) -> Self {
        assert!(n > 0, "placement requires at least one node");
        Self {
            perm: rng.permutation(n),
            pos: 0,
        }
    }

    /// Number of nodes in the cycle.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Always false: placements cover at least one node.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns the next node in the cyclic order and advances.
    pub fn next_node(&mut self) -> usize {
        let node = self.perm[self.pos];
        self.pos = (self.pos + 1) % self.perm.len();
        node
    }

    /// Returns the node `offset` steps ahead without advancing. `peek(0)`
    /// is the node `next_node` would return.
    pub fn peek(&self, offset: usize) -> usize {
        self.perm[(self.pos + offset) % self.perm.len()]
    }

    /// Grows the cycle to cover `n` nodes (dynamic storage-node addition,
    /// paper §3.4). New nodes are spliced into random positions so inserts
    /// start reaching them within one cycle.
    pub fn grow(&mut self, n: usize, rng: &mut DetRng) {
        assert!(n >= self.perm.len(), "grow cannot shrink the cycle");
        for node in self.perm.len()..n {
            let at = rng.gen_range(self.perm.len() as u64 + 1) as usize;
            self.perm.insert(at, node);
            if at <= self.pos && self.pos + 1 < self.perm.len() {
                self.pos += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn cycles_visit_every_node_every_cycle() {
        let mut rng = DetRng::new(3);
        let mut p = CyclicPlacement::new(8, &mut rng);
        for cycle in 0..5 {
            let seen: HashSet<usize> = (0..8).map(|_| p.next_node()).collect();
            assert_eq!(seen.len(), 8, "cycle {cycle} must cover all nodes");
        }
    }

    #[test]
    fn different_seeds_give_different_orders() {
        let a: Vec<usize> = {
            let mut rng = DetRng::new(1);
            let mut p = CyclicPlacement::new(16, &mut rng);
            (0..16).map(|_| p.next_node()).collect()
        };
        let b: Vec<usize> = {
            let mut rng = DetRng::new(2);
            let mut p = CyclicPlacement::new(16, &mut rng);
            (0..16).map(|_| p.next_node()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn peek_matches_next() {
        let mut rng = DetRng::new(5);
        let mut p = CyclicPlacement::new(6, &mut rng);
        for _ in 0..20 {
            let expected = p.peek(0);
            assert_eq!(p.next_node(), expected);
        }
    }

    #[test]
    fn peek_offsets_walk_the_cycle() {
        let mut rng = DetRng::new(5);
        let p = CyclicPlacement::new(4, &mut rng);
        let via_peek: Vec<usize> = (0..4).map(|o| p.peek(o)).collect();
        let mut q = p.clone();
        let via_next: Vec<usize> = (0..4).map(|_| q.next_node()).collect();
        assert_eq!(via_peek, via_next);
    }

    #[test]
    fn single_node_cycle() {
        let mut rng = DetRng::new(9);
        let mut p = CyclicPlacement::new(1, &mut rng);
        assert_eq!(p.next_node(), 0);
        assert_eq!(p.next_node(), 0);
    }

    #[test]
    fn grow_adds_new_nodes_to_cycle() {
        let mut rng = DetRng::new(11);
        let mut p = CyclicPlacement::new(3, &mut rng);
        p.next_node();
        p.grow(5, &mut rng);
        assert_eq!(p.len(), 5);
        let seen: HashSet<usize> = (0..5).map(|_| p.next_node()).collect();
        assert!(
            seen.contains(&3) && seen.contains(&4),
            "new nodes reachable"
        );
        // After growth, a full cycle still visits every node exactly once.
        let cycle: Vec<usize> = (0..5).map(|_| p.next_node()).collect();
        let set: HashSet<usize> = cycle.iter().copied().collect();
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn placement_spreads_uniformly_in_aggregate() {
        // Many independent clients inserting a few chunks each must load
        // nodes roughly evenly — the paper's storage balance argument.
        let nodes = 16;
        let clients = 200;
        let per_client = 8;
        let mut load = vec![0u32; nodes];
        for c in 0..clients {
            let mut rng = DetRng::new(1000 + c);
            let mut p = CyclicPlacement::new(nodes, &mut rng);
            for _ in 0..per_client {
                load[p.next_node()] += 1;
            }
        }
        let expect = (clients * per_client) as f64 / nodes as f64;
        for (i, &l) in load.iter().enumerate() {
            let dev = (l as f64 - expect).abs() / expect;
            assert!(dev < 0.25, "node {i} load {l} deviates {dev:.2}");
        }
    }
}
