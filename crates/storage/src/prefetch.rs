//! Chunk prefetching: the runtime analog of batch sampling.
//!
//! Paper §3.3 keeps `b` outstanding storage requests per compute node so
//! that storage stays busy and workers are never starved — "essentially
//! overlapping computation and communication through prefetching of
//! chunks". In this in-process runtime the analog is a background fetcher
//! thread per consuming worker that keeps up to `b` removed chunks buffered
//! in a bounded queue: the queue bound *is* the number of outstanding
//! requests, and the worker consumes from the queue without ever waiting on
//! a probe round-trip while data is available.
//!
//! The fetcher refills in *batches*: each probe round asks the bag for up
//! to `b` chunks at once ([`BagClient::try_remove_batch`]), so a queue
//! that drained completely is refilled with one storage round-trip per
//! node instead of one per chunk.

use crate::bag::{BagClient, BatchRemoveResult};
use crate::error::StorageError;
use crossbeam::channel::{bounded, Receiver};
use hurricane_format::Chunk;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A handle to a prefetching consumer of one bag.
///
/// Dropping the handle stops the fetcher promptly and race-free: drop
/// raises a dedicated shutdown flag, then closes the receiving side of
/// the data channel. A fetcher parked on a full queue observes the
/// disconnect (its blocked `send` fails immediately), and a fetcher
/// mid-probe observes the flag before its next send — there is no window
/// in which it can keep running, unlike the old drain-then-swap scheme,
/// which raced with a concurrent send landing between the drain and the
/// swap.
pub struct Prefetcher {
    rx: Option<Receiver<Result<Chunk, StorageError>>>,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Prefetcher {
    /// Spawns a fetcher over `client` keeping up to `batch_factor` chunks
    /// buffered.
    ///
    /// # Panics
    ///
    /// Panics if `batch_factor` is zero.
    pub fn spawn(mut client: BagClient, batch_factor: usize) -> Self {
        assert!(batch_factor > 0, "batch factor must be at least 1");
        let (tx, rx) = bounded(batch_factor);
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown2 = shutdown.clone();
        let handle = std::thread::Builder::new()
            .name(format!("prefetch-{}", client.bag_id()))
            .spawn(move || {
                let mut backoff_us = 10u64;
                while !shutdown2.load(Ordering::Acquire) {
                    match client.try_remove_batch(batch_factor) {
                        Ok(BatchRemoveResult::Chunks(chunks)) => {
                            backoff_us = 10;
                            for c in chunks {
                                // A failed send means the consumer dropped
                                // the handle; exit immediately.
                                if tx.send(Ok(c)).is_err() {
                                    return;
                                }
                            }
                        }
                        Ok(BatchRemoveResult::Pending) => {
                            std::thread::sleep(std::time::Duration::from_micros(backoff_us));
                            backoff_us = (backoff_us * 2).min(1000);
                        }
                        Ok(BatchRemoveResult::Drained) => return,
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            return;
                        }
                    }
                }
            })
            .expect("spawning prefetch thread");
        Self {
            rx: Some(rx),
            shutdown,
            handle: Some(handle),
        }
    }

    fn rx(&self) -> &Receiver<Result<Chunk, StorageError>> {
        self.rx.as_ref().expect("receiver lives until drop")
    }

    /// Receives the next chunk, blocking until one is available or the bag
    /// drains (`Ok(None)`).
    pub fn recv(&self) -> Result<Option<Chunk>, StorageError> {
        match self.rx().recv() {
            Ok(Ok(c)) => Ok(Some(c)),
            Ok(Err(e)) => Err(e),
            Err(_) => Ok(None), // Fetcher exited: bag drained.
        }
    }

    /// Non-blocking receive; `Ok(None)` means nothing buffered *right now*
    /// (the bag may or may not be drained — use [`Prefetcher::recv`] for
    /// termination detection).
    pub fn try_recv(&self) -> Result<Option<Chunk>, StorageError> {
        match self.rx().try_recv() {
            Ok(Ok(c)) => Ok(Some(c)),
            Ok(Err(e)) => Err(e),
            Err(_) => Ok(None),
        }
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        // Order matters: raise the flag first so a fetcher that is *about*
        // to probe again stops, then drop the receiver so a fetcher parked
        // on a full queue fails its blocked send and exits. Both paths
        // converge without ever re-entering the send loop.
        self.shutdown.store(true, Ordering::Release);
        drop(self.rx.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, StorageCluster};

    fn chunk(v: u64) -> Chunk {
        Chunk::from_vec(v.to_le_bytes().to_vec())
    }

    #[test]
    fn prefetcher_drains_bag() {
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut producer = BagClient::new(cluster.clone(), bag, 1);
        for i in 0..100 {
            producer.insert(chunk(i)).unwrap();
        }
        cluster.seal_bag(bag).unwrap();
        let pf = Prefetcher::spawn(BagClient::new(cluster.clone(), bag, 2), 10);
        let mut n = 0;
        while let Some(_c) = pf.recv().unwrap() {
            n += 1;
        }
        assert_eq!(n, 100);
    }

    #[test]
    fn prefetcher_pipelines_concurrent_producer() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let bag = cluster.create_bag();
        let pf = Prefetcher::spawn(BagClient::new(cluster.clone(), bag, 3), 4);
        let cluster2 = cluster.clone();
        let t = std::thread::spawn(move || {
            let mut p = BagClient::new(cluster2.clone(), bag, 4);
            for i in 0..50 {
                p.insert(chunk(i)).unwrap();
            }
            cluster2.seal_bag(bag).unwrap();
        });
        let mut n = 0;
        while let Some(_c) = pf.recv().unwrap() {
            n += 1;
        }
        t.join().unwrap();
        assert_eq!(n, 50);
    }

    #[test]
    fn dropping_prefetcher_mid_stream_does_not_hang() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut producer = BagClient::new(cluster.clone(), bag, 5);
        for i in 0..1000 {
            producer.insert(chunk(i)).unwrap();
        }
        cluster.seal_bag(bag).unwrap();
        let pf = Prefetcher::spawn(BagClient::new(cluster.clone(), bag, 6), 2);
        let _first = pf.recv().unwrap();
        drop(pf); // Must join cleanly even with 998 chunks unread.
    }

    #[test]
    fn repeated_drop_mid_stream_is_race_free() {
        // Regression scope for the old drain-then-swap shutdown race:
        // spawn and drop many prefetchers at random consumption depths;
        // every drop must join (the test would hang, not fail, if the
        // fetcher missed the shutdown signal).
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut producer = BagClient::new(cluster.clone(), bag, 7);
        for i in 0..500 {
            producer.insert(chunk(i)).unwrap();
        }
        for round in 0..50 {
            let pf = Prefetcher::spawn(
                BagClient::new(cluster.clone(), bag, 100 + round),
                1 + (round as usize % 4),
            );
            for _ in 0..(round % 3) {
                let _ = pf.try_recv();
            }
            drop(pf);
        }
    }

    #[test]
    fn two_prefetchers_share_exactly_once() {
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut producer = BagClient::new(cluster.clone(), bag, 7);
        for i in 0..200 {
            producer.insert(chunk(i)).unwrap();
        }
        cluster.seal_bag(bag).unwrap();
        let a = Prefetcher::spawn(BagClient::new(cluster.clone(), bag, 8), 5);
        let b = Prefetcher::spawn(BagClient::new(cluster.clone(), bag, 9), 5);
        let ta = std::thread::spawn(move || {
            let mut n = 0;
            while let Some(_c) = a.recv().unwrap() {
                n += 1;
            }
            n
        });
        let tb = std::thread::spawn(move || {
            let mut n = 0;
            while let Some(_c) = b.recv().unwrap() {
                n += 1;
            }
            n
        });
        let total = ta.join().unwrap() + tb.join().unwrap();
        assert_eq!(total, 200);
    }

    #[test]
    fn error_propagates() {
        let cluster = StorageCluster::new(1, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut producer = BagClient::new(cluster.clone(), bag, 10);
        producer.insert(chunk(1)).unwrap();
        cluster.node(0).fail();
        let pf = Prefetcher::spawn(BagClient::new(cluster.clone(), bag, 11), 2);
        assert!(pf.recv().is_err());
    }
}
