//! Chunk prefetching: the runtime analog of batch sampling.
//!
//! Paper §3.3 keeps `b` outstanding storage requests per compute node so
//! that storage stays busy and workers are never starved — "essentially
//! overlapping computation and communication through prefetching of
//! chunks". The prefetcher runs one background fetcher thread per
//! consuming worker and delivers chunks through a bounded queue; how the
//! fetcher talks to storage depends on the client's port:
//!
//! * **Direct port** (in-process method calls): one synchronous probe
//!   round at a time, each asking the bag for up to `b` chunks
//!   ([`BagClient::try_remove_batch`]). The queue bound stands in for the
//!   outstanding-request budget.
//! * **RPC port** ([`crate::rpc`]): a true pipeline. The fetcher keeps up
//!   to `b` *concurrently outstanding* `RemoveBatch` requests against
//!   distinct storage nodes (walking the client's pseudorandom cyclic
//!   order) and collects completions as they arrive, so storage-side
//!   latency is overlapped across nodes exactly as the paper describes.
//!
//! Transport failures are *surfaced*: a fetcher that loses its connection
//! mid-stream sends the error to the consumer rather than ending the
//! stream, and a stream that ends without the fetcher's explicit
//! end-of-bag mark is reported as [`StorageError::PrefetchAborted`] — a
//! drained bag and a dead fetcher are never confused.
//!
//! The fetcher→consumer handoff is **batched**: each completed probe (a
//! whole `RemoveBatch` reply, up to `b` chunks) crosses the bounded
//! queue as one run, not one channel operation per chunk. The consumer
//! side buffers the current run and serves [`Prefetcher::recv`] from it,
//! so per-chunk delivery cost is a `VecDeque` pop, and the channel's
//! synchronization is paid once per batch.

use crate::bag::{BagClient, BatchRemoveResult, StoragePort};
use crate::error::StorageError;
use crate::rpc::{CompletionToken, StorageRequest, StorageResponse};
use crossbeam::channel::{bounded, Receiver, Sender};
use hurricane_format::Chunk;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How many chunk runs the fetcher→consumer queue buffers. Two gives
/// double buffering (the fetcher refills one run while the consumer
/// drains another); the pipeline depth proper lives in the fetcher's
/// outstanding-request budget, not in this queue.
const HANDOFF_RUNS: usize = 2;

/// A handle to a prefetching consumer of one bag.
///
/// Dropping the handle stops the fetcher promptly and race-free: drop
/// raises a dedicated shutdown flag, then closes the receiving side of
/// the data channel. A fetcher parked on a full queue observes the
/// disconnect (its blocked `send` fails immediately), and a fetcher
/// mid-probe observes the flag before its next send — there is no window
/// in which it can keep running.
pub struct Prefetcher {
    rx: Option<Receiver<Result<Vec<Chunk>, StorageError>>>,
    /// The run currently being served to the consumer.
    buffered: VecDeque<Chunk>,
    shutdown: Arc<AtomicBool>,
    /// Set by the fetcher before every intentional exit (drained bag or
    /// explicitly delivered error). A disconnected channel without this
    /// mark means the fetcher died: surfaced as `PrefetchAborted`.
    ended: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Prefetcher {
    /// Spawns a fetcher over `client` keeping up to `batch_factor` chunks
    /// buffered (and, over an RPC port, up to `batch_factor` requests in
    /// flight).
    ///
    /// # Panics
    ///
    /// Panics if `batch_factor` is zero.
    pub fn spawn(client: BagClient, batch_factor: usize) -> Self {
        assert!(batch_factor > 0, "batch factor must be at least 1");
        let (tx, rx) = bounded(HANDOFF_RUNS);
        let shutdown = Arc::new(AtomicBool::new(false));
        let ended = Arc::new(AtomicBool::new(false));
        let shutdown2 = shutdown.clone();
        let ended2 = ended.clone();
        let pipelined = matches!(client.port, StoragePort::Rpc(_));
        let handle = std::thread::Builder::new()
            .name(format!("prefetch-{}", client.bag_id()))
            .spawn(move || {
                if pipelined {
                    pipelined_fetch(client, batch_factor, &tx, &shutdown2, &ended2);
                } else {
                    direct_fetch(client, batch_factor, &tx, &shutdown2, &ended2);
                }
            })
            .expect("spawning prefetch thread");
        Self {
            rx: Some(rx),
            buffered: VecDeque::new(),
            shutdown,
            ended,
            handle: Some(handle),
        }
    }

    fn rx(&self) -> &Receiver<Result<Vec<Chunk>, StorageError>> {
        self.rx.as_ref().expect("receiver lives until drop")
    }

    /// Receives the next chunk, blocking until one is available or the bag
    /// drains (`Ok(None)`). Serves from the buffered run when one is in
    /// hand; whole runs cross the fetcher boundary once.
    pub fn recv(&mut self) -> Result<Option<Chunk>, StorageError> {
        loop {
            if let Some(c) = self.buffered.pop_front() {
                return Ok(Some(c));
            }
            match self.rx().recv() {
                Ok(Ok(run)) => self.buffered = run.into(),
                Ok(Err(e)) => return Err(e),
                // Fetcher exited. Only an intentional exit means "drained".
                Err(_) if self.ended.load(Ordering::Acquire) => return Ok(None),
                Err(_) => return Err(StorageError::PrefetchAborted),
            }
        }
    }

    /// Non-blocking receive; `Ok(None)` means nothing buffered *right now*
    /// (the bag may or may not be drained — use [`Prefetcher::recv`] for
    /// termination detection).
    pub fn try_recv(&mut self) -> Result<Option<Chunk>, StorageError> {
        loop {
            if let Some(c) = self.buffered.pop_front() {
                return Ok(Some(c));
            }
            match self.rx().try_recv() {
                Ok(Ok(run)) => self.buffered = run.into(),
                Ok(Err(e)) => return Err(e),
                Err(_) => return Ok(None),
            }
        }
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        // Order matters: raise the flag first so a fetcher that is *about*
        // to probe again stops, then drop the receiver so a fetcher parked
        // on a full queue fails its blocked send and exits. Both paths
        // converge without ever re-entering the send loop.
        self.shutdown.store(true, Ordering::Release);
        drop(self.rx.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The synchronous fetch loop used over a direct (in-process) port: one
/// batched probe round outstanding at a time.
fn direct_fetch(
    mut client: BagClient,
    batch_factor: usize,
    tx: &Sender<Result<Vec<Chunk>, StorageError>>,
    shutdown: &AtomicBool,
    ended: &AtomicBool,
) {
    let mut backoff_us = 10u64;
    while !shutdown.load(Ordering::Acquire) {
        // Grow the placement cycles over nodes added mid-stream.
        client.refresh_membership();
        match client.try_remove_batch(batch_factor) {
            Ok(BatchRemoveResult::Chunks(chunks)) => {
                backoff_us = 10;
                // One handoff per probe round. A failed send means the
                // consumer dropped the handle; exit immediately.
                if tx.send(Ok(chunks)).is_err() {
                    return;
                }
            }
            Ok(BatchRemoveResult::Pending) => {
                std::thread::sleep(Duration::from_micros(backoff_us));
                backoff_us = (backoff_us * 2).min(1000);
            }
            Ok(BatchRemoveResult::Drained) => {
                ended.store(true, Ordering::Release);
                return;
            }
            Err(e) => {
                let _ = tx.send(Err(e));
                ended.store(true, Ordering::Release);
                return;
            }
        }
    }
}

/// What the last completed request from a node reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeLast {
    /// No completion yet.
    Unknown,
    /// Returned chunks.
    Chunks,
    /// Exhausted with nothing to give, bag not at end-of-file there.
    Empty,
    /// End-of-file: sealed and exhausted. The node is done for good.
    Eof,
    /// Unreachable (node down / all its replicas down).
    Down,
}

/// How long the collector blocks on one connection when no completion is
/// ready anywhere — short, so top-up latency stays bounded.
const PUMP_WAIT: Duration = Duration::from_micros(200);

/// Resubmission budget for one logical probe: how many times a request
/// whose reply never arrives is retransmitted (under its original
/// sequence number, so the server dedup window replays rather than
/// re-executes) before the node is written off as unreachable.
const PREFETCH_ATTEMPTS: u32 = 8;

/// One in-flight `RemoveBatch` probe against one node.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    token: CompletionToken,
    /// Cluster sealed flag read before the ORIGINAL submit (retries keep
    /// it: a retransmission is the same logical request).
    sealed_at_submit: bool,
    /// The probe's sequence number, reused by every retransmission.
    seq: u64,
    /// When the current attempt went on the wire.
    issued: Instant,
    /// Attempts made so far (≥ 1 once in flight).
    attempts: u32,
}

/// The pipelined fetch loop used over an RPC port: keeps up to `b`
/// `RemoveBatch` requests outstanding against distinct nodes and collects
/// completions out of order.
fn pipelined_fetch(
    mut client: BagClient,
    b: usize,
    tx: &Sender<Result<Vec<Chunk>, StorageError>>,
    shutdown: &AtomicBool,
    ended: &AtomicBool,
) {
    let bag = client.bag;
    let mut m = client.remove_cursor.len();
    let mut target = b.min(m).max(1);
    // At most one outstanding request per node (the paper spreads the `b`
    // requests over distinct nodes); `tokens[i]` is node i's in-flight
    // request plus the cluster sealed flag captured *at submit time* —
    // sealed-before-probe is what makes an `exhausted && sealed`
    // conclusion safe (a sealed bag rejects inserts, so nothing can land
    // after a pre-probe sealed read; a post-completion read would race a
    // concurrent insert-then-seal and drop the inserted chunk).
    let mut tokens: Vec<Option<InFlight>> = vec![None; m];
    let mut last: Vec<NodeLast> = vec![NodeLast::Unknown; m];
    let mut outstanding = 0usize;
    let mut empty_streak = 0usize;
    let mut backoff_us = 10u64;

    macro_rules! refresh_membership {
        () => {{
            // Pick up nodes that joined mid-stream (epoch check: one
            // atomic load when nothing changed). New nodes start Unknown,
            // so the top-up probes them like any other node.
            client.refresh_membership();
            let grown = client.remove_cursor.len();
            if grown > m {
                tokens.resize(grown, None);
                last.resize(grown, NodeLast::Unknown);
                m = grown;
                target = b.min(m).max(1);
            }
        }};
    }

    macro_rules! fail {
        ($e:expr) => {{
            let _ = tx.send(Err($e));
            ended.store(true, Ordering::Release);
            return;
        }};
    }

    loop {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        refresh_membership!();
        let StoragePort::Rpc(port) = &mut client.port else {
            unreachable!("pipelined_fetch requires an RPC port");
        };

        // Top up: issue requests to non-EOF nodes without one in flight,
        // following the cyclic placement order.
        let mut scanned = 0;
        while outstanding < target && scanned < m {
            let node = client.remove_cursor.next_node();
            scanned += 1;
            if tokens[node].is_some() || last[node] == NodeLast::Eof {
                continue;
            }
            let sealed_at_submit = match port.cluster().is_sealed(bag) {
                Ok(s) => s,
                Err(e) => fail!(e),
            };
            match port.conns[node].submit_tracked(StorageRequest::RemoveBatch {
                bag,
                origin: node as u32,
                max_n: b,
            }) {
                Ok((t, seq)) => {
                    tokens[node] = Some(InFlight {
                        token: t,
                        sealed_at_submit,
                        seq,
                        issued: Instant::now(),
                        attempts: 1,
                    });
                    outstanding += 1;
                }
                // A dead connection marks the node unreachable, like a
                // down node; the all-down check below surfaces the error
                // once nothing is left to serve from.
                Err(StorageError::Disconnected(_)) => last[node] = NodeLast::Down,
                Err(e) => fail!(e),
            }
        }

        if outstanding == 0 && last.iter().all(|&s| s == NodeLast::Eof) {
            // Nothing in flight and every node is at end-of-file: the bag
            // is drained. (Mixtures involving unreachable nodes fall
            // through to the classification below.)
            ended.store(true, Ordering::Release);
            return;
        }

        // Collect completions (any order).
        let mut completed = 0usize;
        let mut delivered = false;
        for node in 0..m {
            let Some(inflight) = tokens[node] else {
                continue;
            };
            let InFlight {
                token,
                sealed_at_submit,
                ..
            } = inflight;
            match port.conns[node].try_poll(token) {
                Ok(None) => {
                    // No reply yet. A probe outstanding past the port's
                    // request timeout is presumed lost (lossy transport or
                    // wedged server): cancel the attempt and retransmit it
                    // under the SAME sequence number — the server's dedup
                    // window either executes it (original lost) or replays
                    // the recorded reply, chunks included (reply lost), so
                    // nothing is ever consumed twice or dropped. Without
                    // this sweep a single lost message would hang the
                    // stream forever.
                    if inflight.issued.elapsed() >= port.timeout {
                        port.conns[node].cancel(token);
                        tokens[node] = None;
                        outstanding -= 1;
                        if inflight.attempts >= PREFETCH_ATTEMPTS {
                            last[node] = NodeLast::Down;
                        } else {
                            match port.conns[node].resubmit(
                                StorageRequest::RemoveBatch {
                                    bag,
                                    origin: node as u32,
                                    max_n: b,
                                },
                                inflight.seq,
                            ) {
                                Ok(t) => {
                                    tokens[node] = Some(InFlight {
                                        token: t,
                                        issued: Instant::now(),
                                        attempts: inflight.attempts + 1,
                                        ..inflight
                                    });
                                    outstanding += 1;
                                }
                                Err(StorageError::Disconnected(_)) => last[node] = NodeLast::Down,
                                Err(e) => fail!(e),
                            }
                        }
                    }
                }
                Ok(Some(StorageResponse::Removed(batch))) => {
                    tokens[node] = None;
                    outstanding -= 1;
                    completed += 1;
                    if !batch.chunks.is_empty() {
                        delivered = true;
                        last[node] = NodeLast::Chunks;
                        if port.cluster().replication() > 1 {
                            // Keep the backup pointers in step (the raw
                            // node request bypasses the cluster's mirror).
                            mirror(port, node, bag, &batch.tags);
                        }
                        // The whole drained reply crosses the consumer
                        // boundary once.
                        if tx.send(Ok(batch.chunks)).is_err() {
                            return;
                        }
                    } else if batch.eof || (batch.exhausted && sealed_at_submit) {
                        // The cluster-level sealed flag is the end-of-bag
                        // authority, read BEFORE the probe was issued: a
                        // sealed bag rejects inserts, so an exhausted
                        // stream under a pre-probe seal is final.
                        last[node] = NodeLast::Eof;
                    } else {
                        last[node] = NodeLast::Empty;
                    }
                }
                Ok(Some(_)) => fail!(StorageError::Disconnected(port.conns[node].node())),
                Err(
                    e @ (StorageError::NodeDown(_)
                    | StorageError::AllReplicasDown(_)
                    | StorageError::Disconnected(_)),
                ) => {
                    tokens[node] = None;
                    outstanding -= 1;
                    completed += 1;
                    if port.cluster().replication() > 1 {
                        // Failover: retry through the replica set with the
                        // synchronous port path (rare; correctness first).
                        match port.remove_batch(node, bag, b) {
                            Ok(batch) if !batch.chunks.is_empty() => {
                                delivered = true;
                                last[node] = NodeLast::Chunks;
                                if tx.send(Ok(batch.chunks)).is_err() {
                                    return;
                                }
                            }
                            Ok(batch) if batch.eof => last[node] = NodeLast::Eof,
                            Ok(_) => last[node] = NodeLast::Empty,
                            Err(StorageError::AllReplicasDown(_)) => last[node] = NodeLast::Down,
                            Err(e) => fail!(e),
                        }
                    } else {
                        let _ = e;
                        last[node] = NodeLast::Down;
                    }
                }
                Err(e) => fail!(e),
            }
        }

        // A whole cluster of unreachable nodes is an error, not a drain —
        // parity with `BagClient::try_remove_batch`.
        if last.iter().all(|&s| s == NodeLast::Down) {
            fail!(StorageError::AllReplicasDown(bag));
        }
        // Sealed bag with every node at end-of-file or unreachable: the
        // reachable data is exhausted. (Same caveat as the direct path:
        // chunks marooned on a down node without replicas are unreachable
        // until it recovers.)
        if last
            .iter()
            .all(|&s| matches!(s, NodeLast::Eof | NodeLast::Down))
        {
            let sealed = match client.port.cluster().is_sealed(bag) {
                Ok(s) => s,
                Err(e) => fail!(e),
            };
            if sealed {
                ended.store(true, Ordering::Release);
                return;
            }
        }

        if delivered {
            empty_streak = 0;
            backoff_us = 10;
        } else if completed > 0 {
            empty_streak += completed;
            if empty_streak >= m {
                // A full round of empty completions: the bag is (locally)
                // empty but unsealed. Back off like the direct path.
                std::thread::sleep(Duration::from_micros(backoff_us));
                backoff_us = (backoff_us * 2).min(1000);
                empty_streak = 0;
            }
        } else {
            // Nothing completed this sweep: block briefly on one in-flight
            // connection instead of spinning — or, with nothing in flight
            // (unreachable nodes being re-probed), back off.
            let StoragePort::Rpc(port) = &mut client.port else {
                unreachable!();
            };
            if let Some(node) = (0..m).find(|&n| tokens[n].is_some()) {
                port.conns[node].pump(PUMP_WAIT);
            } else {
                std::thread::sleep(Duration::from_micros(backoff_us));
                backoff_us = (backoff_us * 2).min(1000);
            }
        }
    }
}

/// Marks the chunks the pipeline just consumed from `primary`'s own
/// stream consumed on the backups too, by identity tag: all mirrors
/// submitted first, acks collected afterwards (one overlapped round
/// trip, not `r − 1`). Unreachable replicas are skipped exactly as in
/// the direct path.
fn mirror(
    port: &mut crate::rpc::RpcPort,
    primary: usize,
    bag: hurricane_common::BagId,
    tags: &[crate::node::TagSegment],
) {
    let m = port.conns.len();
    let r = port.cluster().replication();
    let origin = primary as u32;
    let timeout = port.timeout;
    let request = StorageRequest::MirrorConsumed {
        bag,
        origin,
        tags: tags.to_vec(),
    };
    #[allow(clippy::type_complexity)]
    let tokens: Vec<(usize, Result<(CompletionToken, u64), StorageError>)> = (1..r)
        .map(|k| {
            let idx = (primary + k) % m;
            let t = port.conns[idx].submit_tracked(request.clone());
            (idx, t)
        })
        .collect();
    for (idx, token) in tokens {
        let _ = token.and_then(|(t, seq)| port.conns[idx].wait_retrying(t, seq, &request, timeout));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, StorageCluster};
    use crate::endpoint::StorageEndpoint;

    fn chunk(v: u64) -> Chunk {
        Chunk::from_vec(v.to_le_bytes().to_vec())
    }

    #[test]
    fn prefetcher_drains_bag() {
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut producer = BagClient::new(cluster.clone(), bag, 1);
        for i in 0..100 {
            producer.insert(chunk(i)).unwrap();
        }
        cluster.seal_bag(bag).unwrap();
        let mut pf = Prefetcher::spawn(BagClient::new(cluster.clone(), bag, 2), 10);
        let mut n = 0;
        while let Some(_c) = pf.recv().unwrap() {
            n += 1;
        }
        assert_eq!(n, 100);
    }

    #[test]
    fn pipelined_prefetcher_drains_bag() {
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let ep = StorageEndpoint::channel(cluster.clone());
        let bag = cluster.create_bag();
        let mut producer = ep.client(bag, 1);
        let chunks: Vec<Chunk> = (0..100).map(chunk).collect();
        producer.insert_batch(&chunks).unwrap();
        cluster.seal_bag(bag).unwrap();
        let mut pf = Prefetcher::spawn(ep.client(bag, 2), 8);
        let mut n = 0;
        while let Some(_c) = pf.recv().unwrap() {
            n += 1;
        }
        assert_eq!(n, 100);
    }

    #[test]
    fn pipelined_prefetcher_sees_concurrent_producer() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let ep = StorageEndpoint::channel(cluster.clone());
        let bag = cluster.create_bag();
        let mut pf = Prefetcher::spawn(ep.client(bag, 3), 4);
        let cluster2 = cluster.clone();
        let producer = std::thread::spawn(move || {
            let mut p = BagClient::new(cluster2.clone(), bag, 4);
            for i in 0..50 {
                p.insert(chunk(i)).unwrap();
            }
            cluster2.seal_bag(bag).unwrap();
        });
        let mut n = 0;
        while let Some(_c) = pf.recv().unwrap() {
            n += 1;
        }
        producer.join().unwrap();
        assert_eq!(n, 50);
    }

    #[test]
    fn pipelined_prefetcher_with_replication_mirrors() {
        let cluster = StorageCluster::new(3, ClusterConfig { replication: 2 });
        let ep = StorageEndpoint::channel(cluster.clone());
        let bag = cluster.create_bag();
        let mut producer = ep.client(bag, 5);
        let chunks: Vec<Chunk> = (0..60).map(chunk).collect();
        producer.insert_batch(&chunks).unwrap();
        cluster.seal_bag(bag).unwrap();
        {
            let mut pf = Prefetcher::spawn(ep.client(bag, 6), 4);
            let mut n = 0;
            while let Some(_c) = pf.recv().unwrap() {
                n += 1;
            }
            assert_eq!(n, 60);
        }
        // The pipeline mirrored its pointer advances: failing every
        // primary now serves nothing a second time.
        for i in 0..3 {
            cluster.node(i).recover();
        }
        cluster.node(0).fail();
        let rest = cluster.remove_batch(0, bag, 100).unwrap();
        assert!(rest.chunks.is_empty() && rest.eof, "no chunk served twice");
    }

    #[test]
    fn pipelined_prefetcher_picks_up_joined_node() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let ep = StorageEndpoint::channel(cluster.clone());
        let bag = cluster.create_bag();
        let mut pf = Prefetcher::spawn(ep.client(bag, 3), 4);
        // A node joins while the prefetcher is already streaming; the
        // producer (fresh client) spreads chunks over all three nodes.
        let idx = ep.add_node();
        let mut producer = ep.client(bag, 4);
        let before = cluster.node(idx).sample(bag).unwrap().total_chunks;
        assert_eq!(before, 0);
        for i in 0..60 {
            producer.insert(chunk(i)).unwrap();
        }
        cluster.seal_bag(bag).unwrap();
        let mut n = 0;
        while let Some(_c) = pf.recv().unwrap() {
            n += 1;
        }
        // All 60 delivered — including the joined node's share, which the
        // prefetcher can only reach by refreshing its membership.
        assert_eq!(n, 60);
    }

    #[test]
    fn prefetcher_pipelines_concurrent_producer() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut pf = Prefetcher::spawn(BagClient::new(cluster.clone(), bag, 3), 4);
        let cluster2 = cluster.clone();
        let t = std::thread::spawn(move || {
            let mut p = BagClient::new(cluster2.clone(), bag, 4);
            for i in 0..50 {
                p.insert(chunk(i)).unwrap();
            }
            cluster2.seal_bag(bag).unwrap();
        });
        let mut n = 0;
        while let Some(_c) = pf.recv().unwrap() {
            n += 1;
        }
        t.join().unwrap();
        assert_eq!(n, 50);
    }

    #[test]
    fn dropping_prefetcher_mid_stream_does_not_hang() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut producer = BagClient::new(cluster.clone(), bag, 5);
        for i in 0..1000 {
            producer.insert(chunk(i)).unwrap();
        }
        cluster.seal_bag(bag).unwrap();
        let mut pf = Prefetcher::spawn(BagClient::new(cluster.clone(), bag, 6), 2);
        let _first = pf.recv().unwrap();
        drop(pf); // Must join cleanly even with 998 chunks unread.
    }

    #[test]
    fn dropping_pipelined_prefetcher_mid_stream_does_not_hang() {
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let ep = StorageEndpoint::channel(cluster.clone());
        let bag = cluster.create_bag();
        let mut producer = ep.client(bag, 5);
        let chunks: Vec<Chunk> = (0..1000).map(chunk).collect();
        producer.insert_batch(&chunks).unwrap();
        cluster.seal_bag(bag).unwrap();
        let mut pf = Prefetcher::spawn(ep.client(bag, 6), 3);
        let _first = pf.recv().unwrap();
        drop(pf);
    }

    #[test]
    fn repeated_drop_mid_stream_is_race_free() {
        // Regression scope for the old drain-then-swap shutdown race:
        // spawn and drop many prefetchers at random consumption depths;
        // every drop must join (the test would hang, not fail, if the
        // fetcher missed the shutdown signal).
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut producer = BagClient::new(cluster.clone(), bag, 7);
        for i in 0..500 {
            producer.insert(chunk(i)).unwrap();
        }
        for round in 0..50 {
            let mut pf = Prefetcher::spawn(
                BagClient::new(cluster.clone(), bag, 100 + round),
                1 + (round as usize % 4),
            );
            for _ in 0..(round % 3) {
                let _ = pf.try_recv();
            }
            drop(pf);
        }
    }

    #[test]
    fn two_prefetchers_share_exactly_once() {
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut producer = BagClient::new(cluster.clone(), bag, 7);
        for i in 0..200 {
            producer.insert(chunk(i)).unwrap();
        }
        cluster.seal_bag(bag).unwrap();
        let mut a = Prefetcher::spawn(BagClient::new(cluster.clone(), bag, 8), 5);
        let mut b = Prefetcher::spawn(BagClient::new(cluster.clone(), bag, 9), 5);
        let ta = std::thread::spawn(move || {
            let mut n = 0;
            while let Some(_c) = a.recv().unwrap() {
                n += 1;
            }
            n
        });
        let tb = std::thread::spawn(move || {
            let mut n = 0;
            while let Some(_c) = b.recv().unwrap() {
                n += 1;
            }
            n
        });
        let total = ta.join().unwrap() + tb.join().unwrap();
        assert_eq!(total, 200);
    }

    #[test]
    fn error_propagates() {
        let cluster = StorageCluster::new(1, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut producer = BagClient::new(cluster.clone(), bag, 10);
        producer.insert(chunk(1)).unwrap();
        cluster.node(0).fail();
        let mut pf = Prefetcher::spawn(BagClient::new(cluster.clone(), bag, 11), 2);
        assert!(pf.recv().is_err());
    }

    #[test]
    fn pipelined_error_propagates_on_all_down() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let ep = StorageEndpoint::channel(cluster.clone());
        let bag = cluster.create_bag();
        let mut producer = ep.client(bag, 12);
        producer.insert(chunk(1)).unwrap();
        cluster.node(0).fail();
        cluster.node(1).fail();
        let mut pf = Prefetcher::spawn(ep.client(bag, 13), 4);
        assert!(matches!(
            pf.recv(),
            Err(StorageError::AllReplicasDown(_) | StorageError::NodeDown(_))
        ));
    }
}
