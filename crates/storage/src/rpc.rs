//! The storage RPC boundary: explicit messages between compute and storage.
//!
//! Hurricane's compute/storage separation (paper §3) only pays off when
//! storage is addressed through a *message* boundary rather than in-process
//! method calls: the prefetcher keeps `b` requests outstanding against
//! remote storage nodes (paper §3.3), and writers overlap replica acks —
//! neither is expressible when every operation is a blocking method call.
//! This module makes the boundary explicit.
//!
//! # The message protocol
//!
//! Every storage-node operation is one [`StorageRequest`] message answered
//! by exactly one [`StorageResponse`] (or a [`StorageError`]). Requests
//! travel inside a [`RequestEnvelope`] carrying a **correlation id**
//! assigned by the client; the reply echoes the id in its
//! [`ReplyEnvelope`]. Ids are what let a client keep many requests in
//! flight on one connection and match completions to callers — replies may
//! legitimately arrive out of order, because each node dispatches requests
//! on a small pool of server threads (and a future networked server makes
//! no ordering promises at all).
//!
//! The request set covers the full node API: batched inserts and removes
//! (the single-chunk operations of the original API are the `n = 1` case),
//! pointer mirroring for replication, sampling, non-destructive reads, and
//! the bag lifecycle (seal / rewind / discard / collect). Batch messages
//! are deliberate: one envelope per *batch*, not per chunk, is what keeps
//! the boundary cheap enough to put under the hot path.
//!
//! # Layers
//!
//! * [`Transport`] — one bidirectional connection to one storage node:
//!   non-blocking `send`, polled receive. [`ChannelTransport`] is the
//!   in-process implementation over crossbeam channels; a network
//!   transport implements the same trait over a socket (serialize the
//!   envelope, write; read, deserialize) and **nothing above this trait
//!   changes** — `NodeConnection`, `RpcPort`, `BagClient`, and the
//!   prefetcher are all transport-agnostic.
//! * [`NodeServerHandle`] — the per-node server: a small pool of dispatch
//!   threads draining one MPMC request queue into the sharded
//!   [`StorageNode`]. Shutdown is *draining*: every request already
//!   submitted is answered before the loops exit, then clients observe
//!   disconnection on their next send.
//! * [`NodeConnection`] — the client-side correlation layer: assigns ids,
//!   parks out-of-order replies, and exposes completion *tokens*
//!   ([`CompletionToken`]) so callers can submit now and collect later.
//! * [`RpcPort`] — a per-owner set of connections (one per node) plus the
//!   cluster metadata handle; implements the cluster-level data plane
//!   (replica fan-out with backups-first ordering, failover, pointer
//!   mirroring) on top of submit/wait. [`crate::BagClient`] routes through
//!   it when minted from a non-direct [`crate::StorageEndpoint`].
//! * [`StorageRpc`] — serves every node of a cluster and mints ports.
//!
//! # Replication over RPC
//!
//! Replicated inserts preserve the backups-first invariant (see
//! [`crate::StorageCluster::insert_batch`]): backups are written —
//! concurrently, overlapping their acks — and *acknowledged* before the
//! primary write is issued, so anything a reader could have been served
//! from the primary already exists on every backup. Every fan-out shares
//! one writer-minted **run id** ([`crate::next_run_id`]), giving each
//! chunk the same `(run, k)` identity at every replica; pointer mirrors
//! then consume by identity ([`StorageRequest::MirrorConsumed`]), which
//! stays exactly-once even when replica logs diverged after a partial
//! insert. Replica sets of size `r` pay one round-trip of latency for
//! the backups (not `r − 1`) plus one for the primary.
//!
//! # The amortized data plane
//!
//! Message boundaries only pay off when per-message costs are amortized
//! across batches instead of paid per bucket (the same discipline as the
//! paper's batch sampling, §3.3 Eq. 1). Three layers of this module
//! implement that amortization on the write path:
//!
//! ```text
//!  BagClient::insert_batch / insert_batch_vec
//!        │  cyclic bucketing (origin = target node)
//!        ▼
//!  ┌─ RpcPort ──────────────────────────────────────────────────────┐
//!  │ insert COALESCER: per-node staging queues merge buckets from   │
//!  │ successive calls into one run per (node, bag); flushed when    │
//!  │ staged chunks reach the coalesce window, or by flush().        │
//!  │        │  one InsertBatch envelope per (node, bag) per flush   │
//!  │        ▼                                                       │
//!  │ ChunkRun retransmit buffers: each envelope carries an          │
//!  │ Arc<[Chunk]> view; replica fan-out and rerouting after a       │
//!  │ refused node clone ONE refcount, never the chunks.             │
//!  └────────┬───────────────────────────────────────────────────────┘
//!           ▼
//!  ┌─ NodeConnection (one per node) ────────────────────────────────┐
//!  │ SLAB correlation table: completion tokens are reusable slots   │
//!  │ (index ‖ generation), no per-request map churn; stale replies  │
//!  │ to abandoned slots die on a generation mismatch.               │
//!  │ WRITER CREDIT: submit blocks (pumping replies) once            │
//!  │ `credit` requests are on the wire unanswered — a stalled node  │
//!  │ bounds the lane instead of accumulating unbounded queue.       │
//!  └────────┬───────────────────────────────────────────────────────┘
//!           ▼
//!       Transport (channel / inline / socket)
//! ```
//!
//! Coalescing is **off by default** (`coalesce window = 0` flushes every
//! call, preserving call-synchronous semantics); the engine and the
//! contended microbenches opt in. With a window of `w`, successive
//! batches of `n` chunks over `m` nodes send `m` envelopes per `w`
//! staged chunks instead of `m` per `n` — an `w / n`-fold envelope
//! reduction — at the cost of deferred completion: staged chunks are
//! durable only after the next flush, so writers must [`RpcPort::flush`]
//! before sealing the bag or handing off to readers. Reads and
//! synchronous inserts through the same port flush first, so a port
//! always reads its own writes.

use crate::cluster::StorageCluster;
use crate::error::StorageError;
use crate::node::{next_run_id, BagSample, NodeRemove, NodeRemoveBatch, StorageNode, TagSegment};
use crossbeam::channel::{unbounded, Receiver, Sender};
use hurricane_common::{BagId, StorageNodeId};
use hurricane_format::Chunk;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default client-side request timeout. Generous: in-process dispatch is
/// microseconds, so a timeout here means the server is gone or wedged.
pub const DEFAULT_REQUEST_TIMEOUT: Duration = Duration::from_secs(10);

/// Default dispatch threads per node server. More than one so replies can
/// genuinely reorder (keeping the correlation layer honest) and so
/// operations on different bags exploit the node's per-bag sharding.
pub const DEFAULT_DISPATCH_THREADS: usize = 2;

/// Default per-connection writer credit: how many requests may be on the
/// wire unanswered before [`NodeConnection::submit`] blocks. Sized well
/// above the prefetcher's self-limit (one request per node) and the
/// insert fan-out (one envelope per bag per node per flush) so healthy
/// traffic never stalls, while a wedged node bounds its lane at a few
/// dozen envelopes instead of accumulating unbounded queue.
pub const DEFAULT_WRITER_CREDIT: usize = 64;

/// A refcounted, immutable run of chunks — the insert data plane's unit
/// of transfer and retransmission.
///
/// An [`StorageRequest::InsertBatch`] envelope carries one run. Because
/// the backing store is an `Arc<[Chunk]>`, fanning a run out to `r`
/// replicas or rerouting it after a refused node clones **one refcount**,
/// not one per chunk (let alone the payload): the same buffer serves as
/// the retransmit buffer for every attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkRun {
    chunks: Arc<[Chunk]>,
}

impl ChunkRun {
    /// Wraps an owned chunk vector (moves the chunks; no per-chunk clone).
    pub fn new(chunks: Vec<Chunk>) -> Self {
        Self {
            chunks: chunks.into(),
        }
    }

    /// Builds a run from borrowed chunks (one refcount bump per chunk —
    /// the entry point for callers that keep ownership).
    pub fn from_slice(chunks: &[Chunk]) -> Self {
        Self {
            chunks: chunks.to_vec().into(),
        }
    }
}

impl From<Vec<Chunk>> for ChunkRun {
    fn from(chunks: Vec<Chunk>) -> Self {
        Self::new(chunks)
    }
}

impl std::ops::Deref for ChunkRun {
    type Target = [Chunk];

    fn deref(&self) -> &[Chunk] {
        &self.chunks
    }
}

/// One storage-node operation, as a message.
///
/// Single-chunk operations of the in-process API are expressed as `n = 1`
/// batches; the wire protocol only carries the batched forms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageRequest {
    /// Append `chunks` to `bag` under origin stream `origin`
    /// ([`StorageNode::insert_run`]).
    InsertBatch {
        /// Target bag.
        bag: BagId,
        /// Primary index the chunks are addressed to.
        origin: u32,
        /// Writer-minted run id ([`next_run_id`]), identical across the
        /// replica fan-out of this run: chunk `k` lands with identity
        /// tag `(run, k)` at every replica.
        run: u64,
        /// Chunks to append, in order (shared retransmit buffer).
        chunks: ChunkRun,
    },
    /// Remove up to `max_n` chunks of origin stream `origin`
    /// ([`StorageNode::remove_from_batch`]).
    RemoveBatch {
        /// Target bag.
        bag: BagId,
        /// Origin stream to read.
        origin: u32,
        /// Maximum chunks to remove.
        max_n: usize,
    },
    /// Mark the identified chunks of origin stream `origin` consumed
    /// without returning data ([`StorageNode::mirror_consumed`]) — the
    /// pointer mirror a serving replica's remove fans out to the rest of
    /// the replica set.
    MirrorConsumed {
        /// Target bag.
        bag: BagId,
        /// Origin stream to advance.
        origin: u32,
        /// Identities of the served chunks, as reported by the serving
        /// replica's [`NodeRemoveBatch::tags`].
        tags: Vec<TagSegment>,
    },
    /// Sample `bag`'s state at this node ([`StorageNode::sample`]).
    Sample {
        /// Target bag.
        bag: BagId,
    },
    /// Read chunk `index` non-destructively ([`StorageNode::read_at`]).
    ReadAt {
        /// Target bag.
        bag: BagId,
        /// Chunk index within the node's own stream.
        index: usize,
    },
    /// Copy every chunk of `bag` at this node ([`StorageNode::snapshot`]).
    Snapshot {
        /// Target bag.
        bag: BagId,
    },
    /// Copy every chunk of `bag` whose origin is `origin`
    /// ([`StorageNode::snapshot_from`]).
    SnapshotFrom {
        /// Target bag.
        bag: BagId,
        /// Origin stream to copy.
        origin: u32,
    },
    /// Seal `bag` against inserts ([`StorageNode::seal`]).
    Seal {
        /// Target bag.
        bag: BagId,
    },
    /// Rewind `bag`'s read pointers ([`StorageNode::rewind`]).
    Rewind {
        /// Target bag.
        bag: BagId,
    },
    /// Discard `bag`'s contents and reopen it ([`StorageNode::discard`]).
    Discard {
        /// Target bag.
        bag: BagId,
    },
    /// Garbage-collect `bag` ([`StorageNode::collect`]).
    Collect {
        /// Target bag.
        bag: BagId,
    },
    /// Start draining this node ([`StorageNode::start_draining`]): it
    /// refuses further inserts but keeps serving removes until empty —
    /// the membership protocol's "leave" message (paper §3.4).
    Drain,
    /// Ask whether every bag here is fully drained
    /// ([`StorageNode::is_drained`]).
    IsDrained,
    /// Liveness probe; answered with [`StorageResponse::Pong`].
    Ping,
    /// Mark identities consumed and learn which already were
    /// ([`StorageNode::claim_consumed`]): the reconciliation step a
    /// reader runs against replicas that answered empty before another
    /// replica served it chunks, so a concurrent serve of the same
    /// chunks elsewhere is detected instead of double-delivered.
    ClaimConsumed {
        /// Target bag.
        bag: BagId,
        /// Origin stream the claimed chunks belong to.
        origin: u32,
        /// Identity of the chunks about to be delivered.
        tags: Vec<TagSegment>,
    },
}

impl StorageRequest {
    /// Whether re-executing this request is harmless.
    ///
    /// Idempotent requests may be retried (and even executed twice by a
    /// duplicated envelope) without changing the outcome; non-idempotent
    /// ones must pass through the server's dedup window ([`ServerDedup`])
    /// so a retransmission replays the first execution's result instead of
    /// executing again. The classification is deliberately conservative:
    /// `Rewind` / `Discard` / `Collect` are idempotent *with themselves*
    /// but not commutative with interleaved removes (a delayed duplicate
    /// `Rewind` arriving after fresh removes would resurrect consumed
    /// chunks), so they are classified non-idempotent and deduplicated.
    /// `MirrorConsumed` is likewise identity-idempotent with itself but a
    /// delayed duplicate arriving after a `Rewind` would re-consume the
    /// resurrected chunks, so it stays deduplicated too.
    pub fn is_idempotent(&self) -> bool {
        match self {
            StorageRequest::InsertBatch { .. }
            | StorageRequest::RemoveBatch { .. }
            | StorageRequest::MirrorConsumed { .. }
            | StorageRequest::ClaimConsumed { .. }
            | StorageRequest::Rewind { .. }
            | StorageRequest::Discard { .. }
            | StorageRequest::Collect { .. } => false,
            StorageRequest::Sample { .. }
            | StorageRequest::ReadAt { .. }
            | StorageRequest::Snapshot { .. }
            | StorageRequest::SnapshotFrom { .. }
            | StorageRequest::Seal { .. }
            | StorageRequest::Drain
            | StorageRequest::IsDrained
            | StorageRequest::Ping => true,
        }
    }
}

/// The success payload of one [`StorageRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageResponse {
    /// Acknowledges [`StorageRequest::InsertBatch`].
    Inserted,
    /// Answers [`StorageRequest::RemoveBatch`].
    Removed(NodeRemoveBatch),
    /// Acknowledges [`StorageRequest::MirrorConsumed`].
    Mirrored,
    /// Answers [`StorageRequest::Sample`].
    Sampled(BagSample),
    /// Answers [`StorageRequest::ReadAt`].
    ChunkAt(Option<Chunk>),
    /// Answers [`StorageRequest::Snapshot`] / [`StorageRequest::SnapshotFrom`].
    Chunks(Vec<Chunk>),
    /// Acknowledges a lifecycle request (seal / rewind / discard / collect).
    Done,
    /// Answers [`StorageRequest::IsDrained`].
    Drained(bool),
    /// Answers [`StorageRequest::Ping`].
    Pong,
    /// Answers [`StorageRequest::ClaimConsumed`]: the sub-segments of
    /// the claimed tags that were already consumed at the node.
    Claimed(Vec<TagSegment>),
}

/// A request tagged with its client-assigned correlation id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestEnvelope {
    /// Correlation id, unique per connection *attempt*: a retransmission
    /// of the same logical request carries a fresh id (the reply routes to
    /// the retry's completion slot, not the abandoned one).
    pub id: u64,
    /// Process-unique client identity, assigned per [`NodeConnection`] —
    /// the namespace of the server's dedup window.
    pub client: u64,
    /// Client-assigned request sequence number, stable across
    /// retransmissions of the same logical request. `(client, seq)` is the
    /// key the server deduplicates non-idempotent requests on.
    pub seq: u64,
    /// The operation.
    pub request: StorageRequest,
}

/// A reply carrying the correlation id of the request it answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyEnvelope {
    /// Correlation id echoed from the request.
    pub id: u64,
    /// Outcome of the operation at the server.
    pub result: Result<StorageResponse, StorageError>,
}

/// Executes one request against a node. This is the *entire* server-side
/// semantics: a network server deserializes an envelope, calls this, and
/// serializes the reply.
pub fn dispatch(
    node: &StorageNode,
    request: StorageRequest,
) -> Result<StorageResponse, StorageError> {
    match request {
        StorageRequest::InsertBatch {
            bag,
            origin,
            run,
            chunks,
        } => node
            .insert_run(bag, &chunks, origin, run)
            .map(|()| StorageResponse::Inserted),
        StorageRequest::RemoveBatch { bag, origin, max_n } => node
            .remove_from_batch(bag, origin, max_n)
            .map(StorageResponse::Removed),
        StorageRequest::MirrorConsumed { bag, origin, tags } => node
            .mirror_consumed(bag, origin, &tags)
            .map(|()| StorageResponse::Mirrored),
        StorageRequest::Sample { bag } => node.sample(bag).map(StorageResponse::Sampled),
        StorageRequest::ReadAt { bag, index } => {
            node.read_at(bag, index).map(StorageResponse::ChunkAt)
        }
        StorageRequest::Snapshot { bag } => node.snapshot(bag).map(StorageResponse::Chunks),
        StorageRequest::SnapshotFrom { bag, origin } => {
            node.snapshot_from(bag, origin).map(StorageResponse::Chunks)
        }
        StorageRequest::Seal { bag } => node.seal(bag).map(|()| StorageResponse::Done),
        StorageRequest::Rewind { bag } => node.rewind(bag).map(|()| StorageResponse::Done),
        StorageRequest::Discard { bag } => node.discard(bag).map(|()| StorageResponse::Done),
        StorageRequest::Collect { bag } => node.collect(bag).map(|()| StorageResponse::Done),
        StorageRequest::Drain => {
            node.start_draining();
            Ok(StorageResponse::Done)
        }
        StorageRequest::IsDrained => node.is_drained().map(StorageResponse::Drained),
        StorageRequest::Ping => Ok(StorageResponse::Pong),
        StorageRequest::ClaimConsumed { bag, origin, tags } => node
            .claim_consumed(bag, origin, &tags)
            .map(StorageResponse::Claimed),
    }
}

/// Completed dedup entries retained per client. Retransmissions arrive
/// within `attempts × timeout` of the original, during which a healthy
/// client completes far fewer than this many later requests (writer
/// credit bounds it at [`DEFAULT_WRITER_CREDIT`] in flight).
const DEDUP_WINDOW: usize = 256;

/// Client windows retained per node server before the least recently
/// active client is evicted wholesale.
const DEDUP_MAX_CLIENTS: usize = 256;

/// What [`ServerDedup::begin`] decided about an arriving envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Served {
    /// First sighting of `(client, seq)`: execute the request, then record
    /// the outcome with [`ServerDedup::complete`].
    Execute,
    /// A retransmission of a completed request: reply with the first
    /// execution's recorded outcome, do NOT execute again.
    Replayed(Result<StorageResponse, StorageError>),
    /// A duplicate racing the original's in-progress execution (another
    /// dispatch thread holds it): drop the envelope without replying — the
    /// client's retry machinery will ask again and hit the replay path.
    Suppressed,
}

/// One request's state in a client's dedup window.
#[derive(Debug)]
enum DedupEntry {
    /// Execution in progress on some dispatch thread.
    Running,
    /// Execution finished with this outcome. Errors are cached too: the
    /// first execution's outcome is THE outcome of the request, and a
    /// retransmission must not get a second roll of the dice.
    Done(Result<StorageResponse, StorageError>),
}

#[derive(Debug, Default)]
struct ClientWindow {
    entries: HashMap<u64, DedupEntry>,
    /// Completed seqs in completion order, for window eviction.
    completed: std::collections::VecDeque<u64>,
    /// Last-activity stamp for whole-client LRU eviction.
    stamp: u64,
}

/// Server-side duplicate suppression for non-idempotent requests: a
/// bounded per-client window of `(seq → outcome)` entries.
///
/// The client reuses one sequence number across every retransmission of a
/// logical request (see [`NodeConnection::resubmit`]), so whichever copy
/// arrives first executes and every later copy is answered from the
/// window ([`Served::Replayed`]) or dropped while the first is still
/// running ([`Served::Suppressed`]). This is what makes a timed-out
/// `InsertBatch` safe to retry — a duplicated or retried envelope can
/// never double-insert — and what lets the prefetcher resubmit a lost
/// `RemoveBatch` without losing the chunks the original may have consumed
/// (the recorded reply carries them).
///
/// The window is part of the node's durable state in the same sense as
/// its chunk logs: a simulated crash/restart ([`StorageNode::fail`] /
/// [`StorageNode::recover`], or the faultsim crate's message-level crash)
/// keeps it, modeling a write-ahead-logged window on disk.
#[derive(Debug, Default)]
pub struct ServerDedup {
    inner: Mutex<DedupInner>,
}

#[derive(Debug, Default)]
struct DedupInner {
    clients: HashMap<u64, ClientWindow>,
    clock: u64,
}

impl ServerDedup {
    /// Creates an empty window set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies an arriving `(client, seq)` pair. On [`Served::Execute`]
    /// the caller owns the execution and must call
    /// [`ServerDedup::complete`] with the outcome.
    pub fn begin(&self, client: u64, seq: u64) -> Served {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        if !inner.clients.contains_key(&client) && inner.clients.len() >= DEDUP_MAX_CLIENTS {
            // Evict the least recently active client wholesale.
            if let Some((&oldest, _)) = inner.clients.iter().min_by_key(|(_, w)| w.stamp) {
                inner.clients.remove(&oldest);
            }
        }
        let window = inner.clients.entry(client).or_default();
        window.stamp = stamp;
        match window.entries.get(&seq) {
            Some(DedupEntry::Running) => Served::Suppressed,
            Some(DedupEntry::Done(result)) => Served::Replayed(result.clone()),
            None => {
                window.entries.insert(seq, DedupEntry::Running);
                Served::Execute
            }
        }
    }

    /// Records the outcome of an execution admitted by
    /// [`ServerDedup::begin`], evicting the oldest completed entries
    /// beyond the window bound.
    pub fn complete(&self, client: u64, seq: u64, result: &Result<StorageResponse, StorageError>) {
        let mut inner = self.inner.lock();
        let Some(window) = inner.clients.get_mut(&client) else {
            // The whole client window was LRU-evicted mid-execution;
            // nothing to record (a late duplicate would re-execute, which
            // the eviction bound accepts as out-of-window).
            return;
        };
        window.entries.insert(seq, DedupEntry::Done(result.clone()));
        window.completed.push_back(seq);
        while window.completed.len() > DEDUP_WINDOW {
            if let Some(old) = window.completed.pop_front() {
                window.entries.remove(&old);
            }
        }
    }
}

/// How [`serve_deduped_traced`] handled an envelope — the observable
/// server-side classification, used by fault-injection harnesses to
/// assert that a duplicated envelope was resolved by the dedup window
/// rather than executed again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedKind {
    /// Idempotent request: dispatched directly, no dedup bookkeeping.
    Idempotent,
    /// First delivery of a non-idempotent request: executed and recorded.
    Executed,
    /// Retransmission of a completed request: recorded outcome replayed.
    Replayed,
    /// Duplicate racing a still-running execution: dropped without reply.
    Suppressed,
}

/// Executes one envelope against a node with duplicate suppression: the
/// full server-side semantics of the retry-safe protocol. Idempotent
/// requests dispatch directly; non-idempotent ones pass through `dedup`
/// so retransmissions replay the recorded outcome. Returns `None` when
/// the envelope must be dropped without a reply ([`Served::Suppressed`]).
pub fn serve_deduped(
    node: &StorageNode,
    dedup: &ServerDedup,
    env: RequestEnvelope,
) -> Option<ReplyEnvelope> {
    serve_deduped_traced(node, dedup, env).0
}

/// [`serve_deduped`] also reporting how the envelope was classified.
pub fn serve_deduped_traced(
    node: &StorageNode,
    dedup: &ServerDedup,
    env: RequestEnvelope,
) -> (Option<ReplyEnvelope>, ServedKind) {
    let RequestEnvelope {
        id,
        client,
        seq,
        request,
    } = env;
    if request.is_idempotent() {
        let result = dispatch(node, request);
        return (Some(ReplyEnvelope { id, result }), ServedKind::Idempotent);
    }
    match dedup.begin(client, seq) {
        Served::Replayed(result) => (Some(ReplyEnvelope { id, result }), ServedKind::Replayed),
        Served::Suppressed => (None, ServedKind::Suppressed),
        Served::Execute => {
            let result = dispatch(node, request);
            dedup.complete(client, seq, &result);
            (Some(ReplyEnvelope { id, result }), ServedKind::Executed)
        }
    }
}

/// One bidirectional connection to one storage node.
///
/// `send` must not block on the server (enqueue and return); receives are
/// polled. Implementations map their transport's failure modes onto
/// [`StorageError::Disconnected`].
pub trait Transport: Send {
    /// The node this connection addresses.
    fn node(&self) -> StorageNodeId;

    /// Enqueues a request. Fails only when the server side is gone.
    fn send(&mut self, env: RequestEnvelope) -> Result<(), StorageError>;

    /// Returns the next buffered reply, if any, without blocking.
    fn try_recv(&mut self) -> Option<ReplyEnvelope>;

    /// Waits up to `timeout` for the next reply.
    fn recv_timeout(&mut self, timeout: Duration) -> Option<ReplyEnvelope>;
}

/// A request on the wire of the channel transport: the envelope plus the
/// sending connection's reply lane (the in-process stand-in for "the
/// socket the request arrived on").
struct WireRequest {
    env: RequestEnvelope,
    reply_tx: Sender<ReplyEnvelope>,
}

/// What flows through a node server's request queue.
enum WireMsg {
    /// A client request to dispatch.
    Request(WireRequest),
    /// The circulating shutdown token: exactly one exists per shutdown.
    /// The receiving worker drains the queue, hands the token to the next
    /// worker, and exits — prompt, drained teardown with no flag polling.
    Shutdown,
}

/// The crossbeam-channel [`Transport`]: an unbounded request lane shared
/// with the node's server pool and a private reply lane.
pub struct ChannelTransport {
    node: StorageNodeId,
    req_tx: Sender<WireMsg>,
    reply_tx: Sender<ReplyEnvelope>,
    reply_rx: Receiver<ReplyEnvelope>,
}

impl Transport for ChannelTransport {
    fn node(&self) -> StorageNodeId {
        self.node
    }

    fn send(&mut self, env: RequestEnvelope) -> Result<(), StorageError> {
        self.req_tx
            .send(WireMsg::Request(WireRequest {
                env,
                reply_tx: self.reply_tx.clone(),
            }))
            .map_err(|_| StorageError::Disconnected(self.node))
    }

    fn try_recv(&mut self) -> Option<ReplyEnvelope> {
        self.reply_rx.try_recv().ok()
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<ReplyEnvelope> {
        self.reply_rx.recv_timeout(timeout).ok()
    }
}

/// The serving side of one storage node: a pool of dispatch threads
/// draining a shared request queue into the node.
pub struct NodeServerHandle {
    node: Arc<StorageNode>,
    req_tx: Sender<WireMsg>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl NodeServerHandle {
    /// Starts serving `node` on `dispatch_threads` loop threads.
    ///
    /// # Panics
    ///
    /// Panics if `dispatch_threads` is zero.
    pub fn spawn(node: Arc<StorageNode>, dispatch_threads: usize) -> Self {
        assert!(dispatch_threads > 0, "a server needs at least one thread");
        let (req_tx, req_rx) = unbounded::<WireMsg>();
        // One dedup window shared by the whole pool: duplicates racing on
        // different dispatch threads serialize on its lock, never on the
        // node.
        let dedup = Arc::new(ServerDedup::new());
        let workers = (0..dispatch_threads)
            .map(|i| {
                let node = node.clone();
                let dedup = dedup.clone();
                let req_rx = req_rx.clone();
                let req_tx = req_tx.clone();
                std::thread::Builder::new()
                    .name(format!("storage-rpc-{}-{i}", node.id()))
                    .spawn(move || server_loop(&node, &dedup, &req_rx, &req_tx))
                    .expect("spawning storage rpc server thread")
            })
            .collect();
        Self {
            node,
            req_tx,
            workers: Mutex::new(workers),
        }
    }

    /// The node being served.
    pub fn node(&self) -> &Arc<StorageNode> {
        &self.node
    }

    /// Opens a new connection to this server. Connections are cheap: a
    /// clone of the request lane plus a private reply lane.
    pub fn connect(&self) -> ChannelTransport {
        let (reply_tx, reply_rx) = unbounded();
        ChannelTransport {
            node: self.node.id(),
            req_tx: self.req_tx.clone(),
            reply_tx,
            reply_rx,
        }
    }

    /// Stops the server, *draining* first: every request submitted before
    /// the loops exit is dispatched and answered. After this returns,
    /// client sends fail with [`StorageError::Disconnected`].
    pub fn shutdown(&self) {
        // One shutdown token circulates worker to worker; the last one
        // drops it into a dead channel.
        let _ = self.req_tx.send(WireMsg::Shutdown);
        let workers = std::mem::take(&mut *self.workers.lock());
        for w in workers {
            let _ = w.join();
        }
    }
}

impl Drop for NodeServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn server_loop(
    node: &StorageNode,
    dedup: &ServerDedup,
    req_rx: &Receiver<WireMsg>,
    req_tx: &Sender<WireMsg>,
) {
    loop {
        match req_rx.recv() {
            Ok(WireMsg::Request(w)) => serve_one(node, dedup, w),
            Ok(WireMsg::Shutdown) => {
                // Drain: answer everything already in the queue, then pass
                // the token(s) on and exit. Requests submitted after the
                // queue empties race the disconnect and fail at the
                // client's next send. Tokens drained alongside requests
                // (e.g. concurrent shutdown calls) are forwarded too, so
                // every remaining worker still gets its wake-up.
                let mut tokens = 1usize;
                while let Ok(m) = req_rx.try_recv() {
                    match m {
                        WireMsg::Request(w) => serve_one(node, dedup, w),
                        WireMsg::Shutdown => tokens += 1,
                    }
                }
                for _ in 0..tokens {
                    let _ = req_tx.send(WireMsg::Shutdown);
                }
                return;
            }
            Err(_) => return,
        }
    }
}

fn serve_one(node: &StorageNode, dedup: &ServerDedup, w: WireRequest) {
    // A send failure means the requesting client is gone; the work is
    // already done (storage ops are not transactional), so just drop it.
    if let Some(reply) = serve_deduped(node, dedup, w.env) {
        let _ = w.reply_tx.send(reply);
    }
}

/// A client-held handle for one in-flight request.
///
/// Tokens are minted by [`NodeConnection::submit`] and redeemed — in any
/// order — with [`NodeConnection::wait`] or [`NodeConnection::try_poll`].
/// The id encodes a slab slot index in the low 32 bits and that slot's
/// generation in the high 32, so slot reuse can never confuse a stale
/// reply with a fresh request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletionToken {
    id: u64,
}

impl CompletionToken {
    /// The correlation id this token tracks.
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// One reusable correlation slot in a connection's slab.
#[derive(Debug)]
struct Slot {
    /// Bumped on every allocation and on abandonment, so an id is never
    /// valid across two uses of the same slot.
    generation: u32,
    state: SlotState,
}

#[derive(Debug)]
enum SlotState {
    /// Free for reuse.
    Vacant,
    /// Request on the wire, no reply yet.
    Pending,
    /// Reply parked, waiting for its token to claim it.
    Ready(Result<StorageResponse, StorageError>),
}

/// How long one pump slice lasts while a submit waits for writer credit.
const CREDIT_PUMP_SLICE: Duration = Duration::from_micros(200);

/// Mints process-unique client identities for [`NodeConnection`]s — the
/// namespace of server-side dedup windows.
static NEXT_CLIENT_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Bounded-retry policy for timed-out requests.
///
/// A timed-out request's outcome is unknown; blind resubmission as a *new*
/// request could double-insert or lose removed chunks. The retry machinery
/// instead retransmits the **same sequence number** ([`NodeConnection::resubmit`]),
/// which the server's dedup window ([`ServerDedup`]) resolves to at most
/// one execution — the retransmission either executes (original was lost)
/// or replays the recorded outcome (reply was lost). The default policy is
/// one attempt, i.e. retries off, preserving fail-fast semantics for
/// callers that handle timeouts themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request, including the first; `1` disables
    /// retries.
    pub attempts: u32,
    /// Backoff slept before the first retransmission, doubling per retry.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 1,
            backoff: Duration::from_millis(1),
        }
    }
}

impl RetryPolicy {
    /// A policy making `attempts` total attempts with the default backoff.
    /// `attempts` is clamped to at least 1.
    pub fn with_attempts(attempts: u32) -> Self {
        Self {
            attempts: attempts.max(1),
            ..Self::default()
        }
    }
}

/// The correlation layer over one [`Transport`], built on a **slab** of
/// reusable token slots instead of per-request map entries: a steady
/// request stream allocates nothing after warm-up, and matching a reply
/// is an index plus a generation compare. The slab also enforces the
/// per-connection **writer credit**: once `credit` requests are on the
/// wire unanswered, [`NodeConnection::submit`] becomes a blocking acquire
/// (pumping replies while it waits) instead of growing the lane — the
/// flow-control bound a stalled node is held to.
pub struct NodeConnection {
    transport: Box<dyn Transport>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Tokens minted but not yet redeemed or abandoned.
    unredeemed: usize,
    /// Requests sent whose replies have not been received (what the
    /// server-side lane can be holding); the quantity credit bounds.
    on_wire: usize,
    credit: usize,
    /// How long a credit acquire may block before surfacing `Timeout`.
    /// Ports align this with their request timeout.
    credit_timeout: Duration,
    /// Total requests ever sent — the envelope counter the coalescing
    /// benchmarks and tests read.
    requests_sent: u64,
    /// Process-unique identity carried in every envelope: the namespace
    /// of the server's dedup window.
    client_id: u64,
    /// Next request sequence number. Allocated once per logical request
    /// and reused by every retransmission of it.
    next_seq: u64,
    /// Timed-out request retry policy (off by default).
    retry: RetryPolicy,
}

impl NodeConnection {
    /// Wraps `transport` in a fresh correlation space with the default
    /// writer credit.
    pub fn new(transport: Box<dyn Transport>) -> Self {
        Self::with_credit(transport, DEFAULT_WRITER_CREDIT)
    }

    /// Wraps `transport` with an explicit writer credit (outstanding
    /// on-wire request budget).
    ///
    /// # Panics
    ///
    /// Panics if `credit` is zero: a connection that can never send is
    /// meaningless.
    pub fn with_credit(transport: Box<dyn Transport>, credit: usize) -> Self {
        assert!(credit > 0, "writer credit must be at least 1");
        Self {
            transport,
            slots: Vec::new(),
            free: Vec::new(),
            unredeemed: 0,
            on_wire: 0,
            credit,
            credit_timeout: DEFAULT_REQUEST_TIMEOUT,
            requests_sent: 0,
            client_id: NEXT_CLIENT_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            next_seq: 0,
            retry: RetryPolicy::default(),
        }
    }

    /// The node this connection addresses.
    pub fn node(&self) -> StorageNodeId {
        self.transport.node()
    }

    /// Number of requests submitted but not yet redeemed or abandoned.
    pub fn outstanding(&self) -> usize {
        self.unredeemed
    }

    /// Requests currently on the wire (sent, reply not yet received).
    pub fn on_wire(&self) -> usize {
        self.on_wire
    }

    /// The writer-credit bound this connection enforces.
    pub fn credit(&self) -> usize {
        self.credit
    }

    /// Re-bounds the writer credit.
    ///
    /// # Panics
    ///
    /// Panics if `credit` is zero.
    pub fn set_credit(&mut self, credit: usize) {
        assert!(credit > 0, "writer credit must be at least 1");
        self.credit = credit;
    }

    /// Bounds how long a credit acquire may block before surfacing
    /// [`StorageError::Timeout`]. Ports align this with their request
    /// timeout so flow control never fails faster than a wait would.
    pub fn set_credit_timeout(&mut self, timeout: Duration) {
        self.credit_timeout = timeout;
    }

    /// Total requests ever sent on this connection.
    pub fn requests_sent(&self) -> u64 {
        self.requests_sent
    }

    /// Blocks until the on-wire count drops below the credit, pumping
    /// replies while waiting. A node that answers nothing within the
    /// credit timeout surfaces as [`StorageError::Timeout`] — the
    /// backpressure contract: a stalled node blocks (then fails) the
    /// writer instead of accumulating unbounded lane queue.
    fn acquire_credit(&mut self) -> Result<(), StorageError> {
        if self.on_wire < self.credit {
            return Ok(());
        }
        let deadline = Instant::now() + self.credit_timeout;
        while self.on_wire >= self.credit {
            let now = Instant::now();
            if now >= deadline {
                return Err(StorageError::Timeout(self.node()));
            }
            if let Some(reply) = self
                .transport
                .recv_timeout((deadline - now).min(CREDIT_PUMP_SLICE))
            {
                self.park(reply);
            }
        }
        Ok(())
    }

    /// The retry policy applied by [`NodeConnection::call`] and
    /// [`NodeConnection::wait_retrying`].
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Sets the timed-out request retry policy.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Sends `request` without waiting, returning its completion token.
    /// Blocks first if the writer credit is exhausted (see
    /// [`NodeConnection::with_credit`]).
    pub fn submit(&mut self, request: StorageRequest) -> Result<CompletionToken, StorageError> {
        self.submit_tracked(request).map(|(t, _)| t)
    }

    /// [`NodeConnection::submit`] also returning the request's sequence
    /// number — what a caller needs to later [`NodeConnection::resubmit`]
    /// the same logical request after a timeout.
    pub fn submit_tracked(
        &mut self,
        request: StorageRequest,
    ) -> Result<(CompletionToken, u64), StorageError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.send_attempt(request, seq).map(|t| (t, seq))
    }

    /// Retransmits a logical request under its original sequence number,
    /// minting a fresh completion token (and correlation id). The server's
    /// dedup window guarantees at most one execution across the original
    /// and every retransmission of a non-idempotent request — which is the
    /// only thing that makes retrying a timed-out insert or remove safe.
    ///
    /// The original token must be abandoned (by a timed-out
    /// [`NodeConnection::wait`] or an explicit [`NodeConnection::cancel`])
    /// before resubmitting, or the slot accounting double-counts the
    /// request.
    pub fn resubmit(
        &mut self,
        request: StorageRequest,
        seq: u64,
    ) -> Result<CompletionToken, StorageError> {
        self.send_attempt(request, seq)
    }

    /// Gives up on an in-flight request: frees its slot (bumping the
    /// generation so a late reply dies on the mismatch) and returns its
    /// writer credit. The request's outcome at the server stays unknown.
    pub fn cancel(&mut self, token: CompletionToken) {
        self.abandon(token.id);
    }

    /// One wire attempt of a logical request: allocates a slot, stamps the
    /// envelope with `(client, seq)`, and sends.
    fn send_attempt(
        &mut self,
        request: StorageRequest,
        seq: u64,
    ) -> Result<CompletionToken, StorageError> {
        self.acquire_credit()?;
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    state: SlotState::Vacant,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let slot = &mut self.slots[idx as usize];
        slot.generation = slot.generation.wrapping_add(1);
        let id = u64::from(idx) | (u64::from(slot.generation) << 32);
        slot.state = SlotState::Pending;
        let env = RequestEnvelope {
            id,
            client: self.client_id,
            seq,
            request,
        };
        match self.transport.send(env) {
            Ok(()) => {
                self.unredeemed += 1;
                self.on_wire += 1;
                self.requests_sent += 1;
                Ok(CompletionToken { id })
            }
            Err(e) => {
                self.slots[idx as usize].state = SlotState::Vacant;
                self.free.push(idx);
                Err(e)
            }
        }
    }

    fn park(&mut self, reply: ReplyEnvelope) {
        let idx = (reply.id & u64::from(u32::MAX)) as usize;
        let generation = (reply.id >> 32) as u32;
        match self.slots.get_mut(idx) {
            Some(slot)
                if slot.generation == generation && matches!(slot.state, SlotState::Pending) =>
            {
                slot.state = SlotState::Ready(reply.result);
                self.on_wire -= 1;
            }
            // Stale reply to an abandoned (or never-issued) request: the
            // generation no longer matches; drop it.
            _ => {}
        }
    }

    fn claim(&mut self, id: u64) -> Option<Result<StorageResponse, StorageError>> {
        let idx = (id & u64::from(u32::MAX)) as usize;
        let generation = (id >> 32) as u32;
        let slot = self.slots.get_mut(idx)?;
        if slot.generation != generation || !matches!(slot.state, SlotState::Ready(_)) {
            return None;
        }
        let SlotState::Ready(result) = std::mem::replace(&mut slot.state, SlotState::Vacant) else {
            unreachable!("checked Ready above");
        };
        self.free.push(idx as u32);
        self.unredeemed -= 1;
        Some(result)
    }

    /// Gives up on `id`: frees its slot (bumping the generation so a late
    /// reply dies on the mismatch) and returns its credit.
    fn abandon(&mut self, id: u64) {
        let idx = (id & u64::from(u32::MAX)) as usize;
        let generation = (id >> 32) as u32;
        let Some(slot) = self.slots.get_mut(idx) else {
            return;
        };
        if slot.generation != generation {
            return;
        }
        match std::mem::replace(&mut slot.state, SlotState::Vacant) {
            SlotState::Pending => {
                slot.generation = slot.generation.wrapping_add(1);
                self.unredeemed -= 1;
                self.on_wire -= 1;
                self.free.push(idx as u32);
            }
            SlotState::Ready(_) => {
                self.unredeemed -= 1;
                self.free.push(idx as u32);
            }
            SlotState::Vacant => {}
        }
    }

    /// Non-blocking completion check. `Ok(None)` means the reply has not
    /// arrived yet; `Err` carries either the server's error reply or a
    /// transport failure.
    pub fn try_poll(
        &mut self,
        token: CompletionToken,
    ) -> Result<Option<StorageResponse>, StorageError> {
        while let Some(reply) = self.transport.try_recv() {
            self.park(reply);
        }
        match self.claim(token.id) {
            Some(result) => result.map(Some),
            None => Ok(None),
        }
    }

    /// Blocks until `token`'s reply arrives or `timeout` elapses. On
    /// timeout the request is *abandoned*: its outcome is unknown and a
    /// late reply will be discarded.
    pub fn wait(
        &mut self,
        token: CompletionToken,
        timeout: Duration,
    ) -> Result<StorageResponse, StorageError> {
        let deadline = Instant::now() + timeout;
        loop {
            while let Some(reply) = self.transport.try_recv() {
                self.park(reply);
            }
            if let Some(result) = self.claim(token.id) {
                return result;
            }
            let now = Instant::now();
            if now >= deadline {
                self.abandon(token.id);
                return Err(StorageError::Timeout(self.node()));
            }
            match self.transport.recv_timeout(deadline - now) {
                Some(reply) => self.park(reply),
                None => {
                    self.abandon(token.id);
                    return Err(StorageError::Timeout(self.node()));
                }
            }
        }
    }

    /// Waits up to `timeout` for *any* reply to arrive and parks it for
    /// its token to claim. Returns whether one arrived. Unlike
    /// [`NodeConnection::wait`], nothing is abandoned on timeout — this is
    /// the blocking primitive for pipelines polling many tokens.
    pub fn pump(&mut self, timeout: Duration) -> bool {
        match self.transport.recv_timeout(timeout) {
            Some(reply) => {
                self.park(reply);
                true
            }
            None => false,
        }
    }

    /// [`NodeConnection::wait`] with bounded retry: a timed-out attempt is
    /// retransmitted under its original `seq` (up to the connection's
    /// [`RetryPolicy`], backing off between attempts), so the server-side
    /// dedup window resolves the retries to at most one execution. `token`
    /// must be the in-flight attempt of `(request, seq)` as returned by
    /// [`NodeConnection::submit_tracked`] or [`NodeConnection::resubmit`].
    ///
    /// Retries go to the **same node** by construction — rerouting a
    /// timed-out non-idempotent request to a different node would escape
    /// its dedup window and risk double execution.
    pub fn wait_retrying(
        &mut self,
        token: CompletionToken,
        seq: u64,
        request: &StorageRequest,
        timeout: Duration,
    ) -> Result<StorageResponse, StorageError> {
        let mut token = token;
        let mut attempt = 1u32;
        let mut backoff = self.retry.backoff;
        loop {
            match self.wait(token, timeout) {
                Err(StorageError::Timeout(_)) if attempt < self.retry.attempts => {
                    attempt += 1;
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                        backoff = backoff.saturating_mul(2);
                    }
                    token = self.resubmit(request.clone(), seq)?;
                }
                outcome => return outcome,
            }
        }
    }

    /// Synchronous convenience: submit + wait, with the connection's
    /// retry policy applied to timeouts.
    pub fn call(
        &mut self,
        request: StorageRequest,
        timeout: Duration,
    ) -> Result<StorageResponse, StorageError> {
        let (token, seq) = self.submit_tracked(request.clone())?;
        self.wait_retrying(token, seq, &request, timeout)
    }
}

/// A [`Transport`] for colocated compute and storage: the full message
/// protocol (envelopes, correlation ids, one reply per request) with the
/// dispatch executed inline on the sending thread — no server threads, no
/// scheduler round-trip. `send` runs the request against the node and
/// queues the reply; receives pop it.
///
/// This is the transport to use when the "remote" node lives in the same
/// process and the caller does not need genuine request concurrency (the
/// prefetcher's pipeline degenerates to eager execution). It exists so
/// the RPC boundary costs nearly nothing in colocated deployments: the
/// architectural seam stays, the context switches go.
pub struct InlineTransport {
    node: Arc<StorageNode>,
    dedup: ServerDedup,
    replies: std::collections::VecDeque<ReplyEnvelope>,
}

impl InlineTransport {
    /// Creates a transport dispatching directly into `node`.
    pub fn new(node: Arc<StorageNode>) -> Self {
        Self {
            node,
            dedup: ServerDedup::new(),
            replies: std::collections::VecDeque::new(),
        }
    }
}

impl Transport for InlineTransport {
    fn node(&self) -> StorageNodeId {
        self.node.id()
    }

    fn send(&mut self, env: RequestEnvelope) -> Result<(), StorageError> {
        // Same server semantics as the threaded pool, dedup included, so
        // the inline path stays protocol-identical.
        if let Some(reply) = serve_deduped(&self.node, &self.dedup, env) {
            self.replies.push_back(reply);
        }
        Ok(())
    }

    fn try_recv(&mut self) -> Option<ReplyEnvelope> {
        self.replies.pop_front()
    }

    fn recv_timeout(&mut self, _timeout: Duration) -> Option<ReplyEnvelope> {
        // Replies are produced synchronously by `send`: if none is queued
        // now, none will ever arrive — don't block.
        self.replies.pop_front()
    }
}

/// The placeholder connection for a membership member whose dial failed:
/// behaves exactly like a connection whose peer died mid-conversation —
/// every send reports [`StorageError::Disconnected`], so replica
/// failover and insert rerouting route around the slot while `conns[i]`
/// ↔ member `i` alignment is preserved. Replaced with a live connection
/// when a later epoch-moving refresh re-dials the member successfully.
struct DeadTransport {
    node: StorageNodeId,
}

impl Transport for DeadTransport {
    fn node(&self) -> StorageNodeId {
        self.node
    }

    fn send(&mut self, _env: RequestEnvelope) -> Result<(), StorageError> {
        Err(StorageError::Disconnected(self.node))
    }

    fn try_recv(&mut self) -> Option<ReplyEnvelope> {
        None
    }

    fn recv_timeout(&mut self, _timeout: Duration) -> Option<ReplyEnvelope> {
        // Nothing was ever sent, so nothing will ever arrive — don't
        // block a caller draining pre-timeout replies.
        None
    }
}

/// A test / tooling server end created by [`loopback`]: receives the raw
/// envelopes a [`ChannelTransport`] sends and lets the caller reply in any
/// order — the seam for exercising correlation, timeouts, and slow
/// servers without threads.
pub struct LoopbackServer {
    req_rx: Receiver<WireMsg>,
    reply_lanes: HashMap<u64, Sender<ReplyEnvelope>>,
}

impl LoopbackServer {
    /// Receives the next request envelope, waiting up to `timeout`.
    pub fn recv(&mut self, timeout: Duration) -> Option<RequestEnvelope> {
        loop {
            match self.req_rx.recv_timeout(timeout).ok()? {
                WireMsg::Request(w) => {
                    self.reply_lanes.insert(w.env.id, w.reply_tx);
                    return Some(w.env);
                }
                WireMsg::Shutdown => continue,
            }
        }
    }

    /// Number of requests currently queued (sent but not yet received).
    pub fn queued(&self) -> usize {
        self.req_rx.len()
    }

    /// Replies to request `id`. Returns false if `id` was never received
    /// or the client is gone.
    pub fn reply(&mut self, id: u64, result: Result<StorageResponse, StorageError>) -> bool {
        match self.reply_lanes.remove(&id) {
            Some(tx) => tx.send(ReplyEnvelope { id, result }).is_ok(),
            None => false,
        }
    }
}

/// Creates a connected ([`ChannelTransport`], [`LoopbackServer`]) pair
/// with no server threads: the caller plays the server.
pub fn loopback(node: StorageNodeId) -> (ChannelTransport, LoopbackServer) {
    let (req_tx, req_rx) = unbounded();
    let (reply_tx, reply_rx) = unbounded();
    (
        ChannelTransport {
            node,
            req_tx,
            reply_tx,
            reply_rx,
        },
        LoopbackServer {
            req_rx,
            reply_lanes: HashMap::new(),
        },
    )
}

/// A [`crate::membership::Connect`] that dials an in-process
/// [`NodeServerHandle`]: connecting is a clone of the server's request
/// lane plus a private reply lane.
struct ChannelConnector {
    server: Arc<NodeServerHandle>,
}

impl crate::membership::Connect for ChannelConnector {
    fn connect(&self) -> Result<Box<dyn Transport>, StorageError> {
        Ok(Box::new(self.server.connect()))
    }
}

/// The served cluster: one [`NodeServerHandle`] per storage node,
/// registered in an epoch-versioned [`crate::Membership`], plus the
/// shared metadata handle. Mint per-owner [`RpcPort`]s with
/// [`StorageRpc::port`].
///
/// The node set is **live**, not snapshotted: after
/// [`StorageCluster::add_node`], call [`StorageRpc::sync`] to serve the
/// new node and publish it in the membership — every existing port picks
/// it up at its next [`RpcPort::refresh_membership`] (clients and the
/// prefetcher refresh automatically), and newly minted ports see it
/// immediately.
pub struct StorageRpc {
    cluster: Arc<StorageCluster>,
    /// Server handles, kept for draining shutdown; `servers[i]` serves
    /// cluster node `i` and is also reachable through `membership`.
    servers: Mutex<Vec<Arc<NodeServerHandle>>>,
    membership: crate::membership::Membership,
    dispatch_threads: usize,
    timeout: Duration,
    retry: RetryPolicy,
}

impl StorageRpc {
    /// Serves every node of `cluster` with default pool size and timeout.
    pub fn serve(cluster: Arc<StorageCluster>) -> Self {
        Self::serve_with(cluster, DEFAULT_DISPATCH_THREADS, DEFAULT_REQUEST_TIMEOUT)
    }

    /// Serves with an explicit per-node dispatch pool size and client
    /// request timeout.
    pub fn serve_with(
        cluster: Arc<StorageCluster>,
        dispatch_threads: usize,
        timeout: Duration,
    ) -> Self {
        let rpc = Self {
            cluster,
            servers: Mutex::new(Vec::new()),
            membership: crate::membership::Membership::new(),
            dispatch_threads,
            timeout,
            retry: RetryPolicy::default(),
        };
        rpc.sync();
        rpc
    }

    /// Serves every cluster node not yet served and publishes it in the
    /// membership — the call that makes [`StorageCluster::add_node`]
    /// visible to the RPC plane. Idempotent; cheap when nothing changed.
    pub fn sync(&self) {
        let mut servers = self.servers.lock();
        for i in servers.len()..self.cluster.num_nodes() {
            let handle = Arc::new(NodeServerHandle::spawn(
                self.cluster.node(i),
                self.dispatch_threads,
            ));
            servers.push(handle.clone());
            self.membership
                .join(Arc::new(ChannelConnector { server: handle }));
        }
    }

    /// Sets the retry policy every subsequently minted port applies to
    /// timed-out requests (see [`RetryPolicy`]; default: retries off).
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The cluster being served.
    pub fn cluster(&self) -> &Arc<StorageCluster> {
        &self.cluster
    }

    /// The live membership view ports refresh against.
    pub fn membership(&self) -> &crate::membership::Membership {
        &self.membership
    }

    /// Number of served nodes.
    pub fn num_nodes(&self) -> usize {
        self.servers.lock().len()
    }

    /// Opens a fresh port: one new connection to every served node, with
    /// the live membership attached so the port can grow with the
    /// cluster.
    pub fn port(&self) -> RpcPort {
        let mut port =
            RpcPort::from_membership(self.cluster.clone(), self.membership.clone(), self.timeout);
        port.set_retry_policy(self.retry);
        port
    }

    /// Shuts every node server down (draining in-flight requests).
    pub fn shutdown(&self) {
        for s in self.servers.lock().iter() {
            s.shutdown();
        }
    }
}

/// Data-plane statistics of one [`RpcPort`] — what the coalescing tests
/// and microbenches read to assert envelope amortization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortStats {
    /// `InsertBatch` envelopes put on the wire (including replica fan-out
    /// and reroute retries).
    pub insert_envelopes: u64,
    /// Chunks that passed through the insert coalescer's staging queues.
    pub staged_chunks: u64,
    /// Staged-data flushes (threshold-triggered or explicit).
    pub flushes: u64,
}

/// A per-owner data-plane handle over RPC: one connection per node plus
/// the cluster metadata. Implements the same cluster-level semantics as
/// the direct API (replication fan-out, failover, pointer mirroring,
/// sealed-flag authority), but over correlated messages — with the
/// cross-batch insert coalescer of the module docs in front of the wire.
pub struct RpcPort {
    cluster: Arc<StorageCluster>,
    pub(crate) conns: Vec<NodeConnection>,
    pub(crate) timeout: Duration,
    /// The live node view this port refreshes against, when elastic
    /// (minted by [`StorageRpc::port`] or built over a membership);
    /// `None` for fixed-connection ports.
    membership: Option<crate::membership::Membership>,
    /// The membership epoch the connection set was last synced to.
    epoch_seen: u64,
    /// Indices whose member could not be dialed at the last sync; they
    /// hold dead placeholder connections (so `conns[i]` ↔ member `i`
    /// stays aligned and failover routes around them) and are re-dialed
    /// whenever the membership epoch moves.
    unreachable: Vec<usize>,
    /// Writer credit applied to connections opened by a refresh (set_*
    /// calls keep it in sync with the live connections).
    credit: usize,
    /// Retry policy applied to connections opened by a refresh.
    retry: RetryPolicy,
    /// Coalesce window in chunks; `0` flushes every `insert_buckets` call
    /// (call-synchronous semantics, the default).
    coalesce_chunks: usize,
    /// Per-node staging queues: at most one pending run per (node, bag),
    /// in first-staged order, so one flush sends at most one envelope per
    /// (bag, origin) stream and can never reorder within it.
    staged: Vec<Vec<(BagId, Vec<Chunk>)>>,
    /// Chunks currently staged across all nodes.
    staged_len: usize,
    stats: PortStats,
}

impl RpcPort {
    /// Builds a port whose every connection is an [`InlineTransport`]:
    /// the message protocol without server threads, for colocated
    /// compute and storage.
    pub fn inline(cluster: Arc<StorageCluster>) -> Self {
        let conns = (0..cluster.num_nodes())
            .map(|i| {
                NodeConnection::new(
                    Box::new(InlineTransport::new(cluster.node(i))) as Box<dyn Transport>
                )
            })
            .collect();
        Self::from_connections(cluster, conns, DEFAULT_REQUEST_TIMEOUT)
    }

    /// Builds a port from explicit connections — the seam where custom
    /// transports (tests, future network sockets) plug in. `conns[i]` must
    /// address the node serving cluster index `i`.
    pub fn from_connections(
        cluster: Arc<StorageCluster>,
        mut conns: Vec<NodeConnection>,
        timeout: Duration,
    ) -> Self {
        // Flow control must not fail faster than a wait on the same port
        // would: align each connection's credit-acquire bound with the
        // port's request timeout.
        for conn in &mut conns {
            conn.set_credit_timeout(timeout);
        }
        let staged = conns.iter().map(|_| Vec::new()).collect();
        Self {
            cluster,
            conns,
            timeout,
            membership: None,
            epoch_seen: 0,
            unreachable: Vec::new(),
            credit: DEFAULT_WRITER_CREDIT,
            retry: RetryPolicy::default(),
            coalesce_chunks: 0,
            staged,
            staged_len: 0,
            stats: PortStats::default(),
        }
    }

    /// Builds a port over a live [`crate::Membership`]: one connection is
    /// dialed per current member, and [`RpcPort::refresh_membership`]
    /// extends the set when the membership grows. A member whose dial
    /// fails gets a dead placeholder connection — index alignment with
    /// the view is preserved, every operation on it reports
    /// [`StorageError::Disconnected`] (so replica failover and insert
    /// rerouting route around it), and it is re-dialed at the next
    /// epoch-moving refresh.
    pub fn from_membership(
        cluster: Arc<StorageCluster>,
        membership: crate::membership::Membership,
        timeout: Duration,
    ) -> Self {
        let mut port = Self::from_connections(cluster, Vec::new(), timeout);
        port.membership = Some(membership);
        port.refresh_membership();
        port
    }

    /// Syncs the connection set with the attached membership: dials every
    /// member joined since the last sync, applying the port's credit,
    /// timeout, and retry settings to the new connections. Returns whether
    /// the port grew. A no-op (one atomic load) when the epoch has not
    /// moved, so callers poll it freely; fixed-connection ports always
    /// return false.
    pub fn refresh_membership(&mut self) -> bool {
        let Some(membership) = self.membership.clone() else {
            return false;
        };
        let epoch = membership.epoch();
        if epoch == self.epoch_seen {
            return false;
        }
        let members = membership.members();
        // The epoch moved, so the view changed: re-dial members that were
        // unreachable at an earlier sync (e.g. a process restarted behind
        // the same membership slot).
        let credit = self.credit;
        let timeout = self.timeout;
        let retry = self.retry;
        let conns = &mut self.conns;
        self.unreachable.retain(|&idx| {
            let Ok(transport) = members[idx].connector.connect() else {
                return true;
            };
            let mut conn = NodeConnection::with_credit(transport, credit);
            conn.set_credit_timeout(timeout);
            conn.set_retry_policy(retry);
            conns[idx] = conn;
            false
        });
        let mut grown = false;
        for (idx, member) in members.iter().enumerate().skip(self.conns.len()) {
            let mut conn = match member.connector.connect() {
                Ok(transport) => NodeConnection::with_credit(transport, self.credit),
                Err(_) => {
                    // Keep `conns[i]` ↔ member `i` alignment with a dead
                    // placeholder; failover treats it exactly like a node
                    // that died mid-conversation.
                    self.unreachable.push(idx);
                    NodeConnection::with_credit(
                        Box::new(DeadTransport { node: member.node }),
                        self.credit,
                    )
                }
            };
            conn.set_credit_timeout(self.timeout);
            conn.set_retry_policy(self.retry);
            self.conns.push(conn);
            self.staged.push(Vec::new());
            grown = true;
        }
        self.epoch_seen = epoch;
        grown
    }

    /// The cluster whose metadata governs this port.
    pub fn cluster(&self) -> &Arc<StorageCluster> {
        &self.cluster
    }

    /// Number of nodes this port can address.
    pub fn num_nodes(&self) -> usize {
        self.conns.len()
    }

    /// Sets the insert-coalescing window: buckets from successive
    /// [`RpcPort::insert_buckets`] calls are merged into per-node staging
    /// queues and flushed once `window_chunks` chunks are staged (or on
    /// [`RpcPort::flush`]). `0` (the default) flushes every call.
    ///
    /// Coalescing defers completion: staged chunks are durable — and
    /// errors for them surface — only at the next flush. Flush before
    /// sealing the bag or handing off to readers on other ports.
    pub fn set_coalescing(&mut self, window_chunks: usize) {
        self.coalesce_chunks = window_chunks;
    }

    /// The configured coalesce window (chunks; 0 = off).
    pub fn coalescing(&self) -> usize {
        self.coalesce_chunks
    }

    /// Sets the writer credit of every connection of this port (current
    /// and future: refresh-opened connections inherit it).
    pub fn set_writer_credit(&mut self, credit: usize) {
        self.credit = credit;
        for conn in &mut self.conns {
            conn.set_credit(credit);
        }
    }

    /// Sets the timed-out request retry policy of every connection of
    /// this port, current and future (see [`RetryPolicy`]; default:
    /// retries off).
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
        for conn in &mut self.conns {
            conn.set_retry_policy(retry);
        }
    }

    /// Data-plane statistics (envelope counts, staged chunks, flushes).
    pub fn stats(&self) -> PortStats {
        self.stats
    }

    /// Total request envelopes sent across this port's connections.
    pub fn envelopes_sent(&self) -> u64 {
        self.conns.iter().map(NodeConnection::requests_sent).sum()
    }

    /// Chunks currently staged and not yet flushed.
    pub fn staged_chunks(&self) -> usize {
        self.staged_len
    }

    /// Synchronous request to node index `idx` over this port's
    /// connection: submit + wait at the port timeout.
    fn call(
        &mut self,
        idx: usize,
        request: StorageRequest,
    ) -> Result<StorageResponse, StorageError> {
        self.conns[idx].call(request, self.timeout)
    }

    /// Whether `e` marks a replica as unreachable (fail over / reroute)
    /// rather than a hard protocol error.
    ///
    /// `Disconnected` qualifies: server shutdown *drains* (every accepted
    /// request is answered before the loops exit), so a disconnect means
    /// the request was never executed and retrying elsewhere cannot
    /// duplicate it. `Timeout` deliberately does NOT: a timed-out
    /// request's outcome is unknown — retrying an insert could duplicate
    /// chunks and retrying a remove could lose them — so timeouts
    /// propagate as hard errors for the caller's recovery machinery
    /// (task restart) to handle.
    fn replica_unreachable(e: &StorageError) -> bool {
        matches!(
            e,
            StorageError::NodeDown(_)
                | StorageError::NodeDraining(_)
                | StorageError::Disconnected(_)
        )
    }

    /// RPC counterpart of [`StorageCluster::insert_batch`]: writes `chunks`
    /// to the replica set of `primary_idx`, overlapping the backup acks.
    ///
    /// Backups are submitted concurrently and *all acknowledged* before the
    /// primary write is issued, preserving the backups-first invariant.
    /// Flushes any staged coalesced inserts first, so the port's writes
    /// stay ordered across the two paths.
    pub fn insert_batch(
        &mut self,
        primary_idx: usize,
        bag: BagId,
        chunks: &[Chunk],
    ) -> Result<(), StorageError> {
        self.flush()?;
        if self.cluster.bag_state(bag)? {
            return Err(StorageError::BagSealed(bag));
        }
        if chunks.is_empty() {
            return Ok(());
        }
        self.insert_run(primary_idx, bag, ChunkRun::from_slice(chunks))
    }

    /// Sends one `InsertBatch` envelope (counted) without waiting,
    /// returning the attempt's token and the request's sequence number
    /// (for retry-safe retransmission under the dedup window).
    fn submit_insert(
        &mut self,
        idx: usize,
        bag: BagId,
        origin: u32,
        run_id: u64,
        run: ChunkRun,
    ) -> Result<(CompletionToken, u64), StorageError> {
        self.stats.insert_envelopes += 1;
        self.conns[idx].submit_tracked(StorageRequest::InsertBatch {
            bag,
            origin,
            run: run_id,
            chunks: run,
        })
    }

    /// Waits for one insert attempt, retrying timeouts under the
    /// connection's policy. The retransmit buffer is the run itself —
    /// every retry clones one refcount.
    #[allow(clippy::too_many_arguments)]
    fn wait_insert(
        &mut self,
        idx: usize,
        bag: BagId,
        origin: u32,
        run_id: u64,
        run: &ChunkRun,
        token: CompletionToken,
        seq: u64,
    ) -> Result<StorageResponse, StorageError> {
        let request = StorageRequest::InsertBatch {
            bag,
            origin,
            run: run_id,
            chunks: run.clone(),
        };
        let timeout = self.timeout;
        self.conns[idx].wait_retrying(token, seq, &request, timeout)
    }

    /// The replica fan-out of one run addressed to primary `primary_idx`:
    /// backups overlapped and acknowledged first, then the primary. The
    /// run is the shared retransmit buffer — every envelope clones one
    /// refcount — and every replica receives the same freshly minted run
    /// id, so the chunks carry identical `(run, k)` identity tags at
    /// every replica. Bag-state checks are the caller's job (entry points
    /// and the coalescer check at staging time).
    fn insert_run(
        &mut self,
        primary_idx: usize,
        bag: BagId,
        run: ChunkRun,
    ) -> Result<(), StorageError> {
        let m = self.conns.len();
        let primary = primary_idx % m;
        let origin = primary as u32;
        let r = self.cluster.replication();
        let run_id = next_run_id();
        let order_lock = (r > 1).then(|| self.cluster.order_lock(bag, origin));
        let _held = order_lock.as_ref().map(|l| l.lock());

        let mut landed = 0usize;
        let mut soft_err = None;
        let mut hard_err = None;
        // Phase 1: all backups, overlapped — submit everything, then
        // collect every ack.
        #[allow(clippy::type_complexity)]
        let backup_tokens: Vec<(usize, Result<(CompletionToken, u64), StorageError>)> = (1..r)
            .map(|k| {
                let idx = (primary + k) % m;
                let token = self.submit_insert(idx, bag, origin, run_id, run.clone());
                (idx, token)
            })
            .collect();
        for (idx, token) in backup_tokens {
            let outcome =
                token.and_then(|(t, seq)| self.wait_insert(idx, bag, origin, run_id, &run, t, seq));
            match outcome {
                Ok(_) => landed += 1,
                Err(e) if Self::replica_unreachable(&e) => soft_err = Some(e),
                Err(e) => hard_err = Some(e),
            }
        }
        // Phase 2: the primary, only after every backup ack is in.
        if hard_err.is_none() {
            match self
                .submit_insert(primary, bag, origin, run_id, run.clone())
                .and_then(|(t, seq)| self.wait_insert(primary, bag, origin, run_id, &run, t, seq))
            {
                Ok(_) => landed += 1,
                Err(e) if Self::replica_unreachable(&e) => soft_err = Some(e),
                Err(e) => hard_err = Some(e),
            }
        }
        if let Some(e) = hard_err {
            return Err(e);
        }
        if landed > 0 {
            Ok(())
        } else {
            Err(soft_err.unwrap_or(StorageError::AllReplicasDown(bag)))
        }
    }

    /// Stages pre-bucketed chunk runs — `buckets[i]` destined for node
    /// `i`, drained by value — into the per-node coalescing queues, then
    /// flushes if the staged total reached the coalesce window (always,
    /// when coalescing is off). Within a node, chunks for the same bag
    /// merge into one pending run regardless of which call staged them:
    /// that is the cross-batch amortization, and it is also what keeps
    /// per-(bag, origin) order — one envelope per stream per flush.
    pub fn insert_buckets(
        &mut self,
        bag: BagId,
        buckets: &mut [Vec<Chunk>],
    ) -> Result<(), StorageError> {
        if self.cluster.bag_state(bag)? {
            return Err(StorageError::BagSealed(bag));
        }
        debug_assert!(buckets.len() <= self.conns.len());
        for (target, bucket) in buckets.iter_mut().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let chunks = std::mem::take(bucket);
            self.staged_len += chunks.len();
            self.stats.staged_chunks += chunks.len() as u64;
            let stage = &mut self.staged[target];
            match stage.iter_mut().find(|(b, _)| *b == bag) {
                Some((_, run)) => run.extend(chunks),
                None => stage.push((bag, chunks)),
            }
        }
        if self.coalesce_chunks == 0 || self.staged_len >= self.coalesce_chunks {
            self.flush()?;
        }
        Ok(())
    }

    /// Flushes every staged run: one `InsertBatch` envelope per
    /// (node, bag), all submitted before any ack is awaited, so the wire
    /// carries the merged batches while the servers work in parallel.
    /// Runs refused by an unreachable node are rerouted to the next nodes
    /// in index order — sharing the same [`ChunkRun`] buffer, not a copy.
    /// With replication, each run keeps the backups-first ordered fan-out.
    ///
    /// Returns once every staged chunk is acknowledged (or an error is
    /// surfaced); a no-op when nothing is staged.
    pub fn flush(&mut self) -> Result<(), StorageError> {
        if self.staged_len == 0 {
            return Ok(());
        }
        self.stats.flushes += 1;
        self.staged_len = 0;
        let mut runs: Vec<(usize, BagId, ChunkRun)> = Vec::new();
        for (target, stage) in self.staged.iter_mut().enumerate() {
            for (bag, chunks) in stage.drain(..) {
                runs.push((target, bag, ChunkRun::new(chunks)));
            }
        }
        if self.cluster.replication() > 1 {
            // Replicated writes must land backups-before-primary per
            // (bag, origin) stream; keep the per-run ordered fan-out
            // (which itself overlaps the backup acks).
            for (target, bag, run) in runs {
                self.insert_run_rerouting(target, bag, run)?;
            }
            return Ok(());
        }
        // Replication 1: full overlap. Submit everything, then collect.
        #[allow(clippy::type_complexity)]
        let tokens: Vec<(
            usize,
            BagId,
            u64,
            ChunkRun,
            Result<(CompletionToken, u64), StorageError>,
        )> = runs
            .into_iter()
            .map(|(target, bag, run)| {
                let run_id = next_run_id();
                let token = self.submit_insert(target, bag, target as u32, run_id, run.clone());
                (target, bag, run_id, run, token)
            })
            .collect();
        let mut refused: Vec<(usize, BagId, ChunkRun)> = Vec::new();
        let mut hard_err = None;
        for (target, bag, run_id, run, token) in tokens {
            match token.and_then(|(t, seq)| {
                self.wait_insert(target, bag, target as u32, run_id, &run, t, seq)
            }) {
                Ok(_) => {}
                Err(e) if Self::replica_unreachable(&e) => refused.push((target, bag, run)),
                Err(e) => hard_err = Some(e),
            }
        }
        if let Some(e) = hard_err {
            return Err(e);
        }
        for (target, bag, run) in refused {
            self.insert_run_rerouting(target, bag, run)?;
        }
        Ok(())
    }

    /// Lands one run, walking nodes from `target` until a reachable one
    /// accepts it (placement has no locality to preserve — any node is as
    /// good as any other, paper §3.3). Every attempt reuses the run's
    /// shared buffer.
    fn insert_run_rerouting(
        &mut self,
        target: usize,
        bag: BagId,
        run: ChunkRun,
    ) -> Result<(), StorageError> {
        let m = self.conns.len();
        let mut last_err = None;
        for offset in 0..m {
            let idx = (target + offset) % m;
            match self.insert_run(idx, bag, run.clone()) {
                Ok(()) => return Ok(()),
                Err(e)
                    if Self::replica_unreachable(&e)
                        || matches!(e, StorageError::AllReplicasDown(_)) =>
                {
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or(StorageError::AllReplicasDown(bag)))
    }

    /// RPC counterpart of [`StorageCluster::remove_batch`]: failover
    /// across the replica set, pointer mirroring onto the live backups,
    /// cluster sealed flag as the end-of-bag authority. Staged coalesced
    /// inserts are flushed first so a port always reads its own writes.
    pub fn remove_batch(
        &mut self,
        primary_idx: usize,
        bag: BagId,
        max_n: usize,
    ) -> Result<NodeRemoveBatch, StorageError> {
        self.flush()?;
        let sealed = self.cluster.bag_state(bag)?;
        let m = self.conns.len();
        let primary = primary_idx % m;
        let origin = primary as u32;
        let r = self.cluster.replication();
        let mut serving = None;
        let mut first_empty: Option<NodeRemoveBatch> = None;
        let mut probed_empty: Vec<usize> = Vec::new();
        let mut soft_err = None;
        for k in 0..r {
            let idx = (primary + k) % m;
            match self.call(idx, StorageRequest::RemoveBatch { bag, origin, max_n }) {
                // As in the direct path: an empty serve is not
                // authoritative, because a restarted replica may have
                // recovered a log missing runs that landed only at a
                // backup while it was down. Probe the whole replica set
                // before reporting the group exhausted.
                Ok(StorageResponse::Removed(batch)) if batch.chunks.is_empty() => {
                    probed_empty.push(idx);
                    if first_empty.is_none() {
                        first_empty = Some(batch);
                    }
                }
                Ok(StorageResponse::Removed(batch)) => {
                    serving = Some((idx, batch));
                    break;
                }
                Ok(other) => return Err(protocol_violation(self.conns[idx].node(), &other)),
                Err(e) if Self::replica_unreachable(&e) => soft_err = Some(e),
                Err(e) => return Err(e),
            }
        }
        let Some((served_by, mut batch)) = serving else {
            let Some(mut batch) = first_empty else {
                return Err(soft_err.unwrap_or(StorageError::AllReplicasDown(bag)));
            };
            batch.eof = batch.exhausted && sealed;
            return Ok(batch);
        };
        // Reconcile the fallback serve: a replica that answered empty
        // above may have concurrently served these very chunks to
        // another reader whose mirror hadn't reached `served_by` yet.
        // Claim the served identities at each such replica and drop
        // whatever it reports already consumed — those chunks belong
        // to the other reader. An unreachable replica claims nothing
        // (its consumed state can't race anyone while it's down).
        for &idx in &probed_empty {
            if batch.chunks.is_empty() {
                break;
            }
            let request = StorageRequest::ClaimConsumed {
                bag,
                origin,
                tags: batch.tags.clone(),
            };
            match self.call(idx, request) {
                Ok(StorageResponse::Claimed(already)) => batch.drop_already_consumed(&already),
                Ok(other) => return Err(protocol_violation(self.conns[idx].node(), &other)),
                Err(e) if Self::replica_unreachable(&e) => {}
                Err(e) => return Err(e),
            }
        }
        if !batch.chunks.is_empty() && r > 1 {
            // Mirror the served chunks' identities onto the other
            // replicas. Acks are awaited (cheap) so a subsequent failover
            // cannot observe a lagging pointer; unreachable replicas are
            // skipped exactly as in the direct path. Replicas probed
            // empty were just claimed — the claim is the mirror.
            let request = StorageRequest::MirrorConsumed {
                bag,
                origin,
                tags: batch.tags.clone(),
            };
            #[allow(clippy::type_complexity)]
            let tokens: Vec<(usize, Result<(CompletionToken, u64), StorageError>)> = (0..r)
                .filter_map(|k| {
                    let idx = (primary + k) % m;
                    (idx != served_by && !probed_empty.contains(&idx)).then(|| {
                        let t = self.conns[idx].submit_tracked(request.clone());
                        (idx, t)
                    })
                })
                .collect();
            let timeout = self.timeout;
            for (idx, token) in tokens {
                let _ = token
                    .and_then(|(t, seq)| self.conns[idx].wait_retrying(t, seq, &request, timeout));
            }
        }
        batch.eof = batch.exhausted && sealed;
        Ok(batch)
    }

    /// RPC counterpart of [`StorageCluster::remove`] (the `n = 1` case).
    pub fn remove(&mut self, primary_idx: usize, bag: BagId) -> Result<NodeRemove, StorageError> {
        let batch = self.remove_batch(primary_idx, bag, 1)?;
        Ok(match batch.chunks.into_iter().next() {
            Some(c) => NodeRemove::Chunk(c),
            None if batch.eof => NodeRemove::Eof,
            None => NodeRemove::Empty,
        })
    }

    /// RPC counterpart of [`StorageCluster::sample_bag`]: fans the sample
    /// out to every node concurrently and merges the replies. Staged
    /// coalesced inserts are flushed first so the sample sees them.
    pub fn sample_bag(&mut self, bag: BagId) -> Result<BagSample, StorageError> {
        self.flush()?;
        self.cluster.check_bag(bag)?;
        let request = StorageRequest::Sample { bag };
        #[allow(clippy::type_complexity)]
        let tokens: Vec<(usize, Result<(CompletionToken, u64), StorageError>)> =
            (0..self.conns.len())
                .map(|idx| {
                    let t = self.conns[idx].submit_tracked(request.clone());
                    (idx, t)
                })
                .collect();
        let mut agg = BagSample {
            sealed: true,
            ..BagSample::default()
        };
        let timeout = self.timeout;
        for (idx, token) in tokens {
            match token
                .and_then(|(t, seq)| self.conns[idx].wait_retrying(t, seq, &request, timeout))
            {
                Ok(StorageResponse::Sampled(s)) => agg.merge(&s),
                Ok(other) => return Err(protocol_violation(self.conns[idx].node(), &other)),
                Err(StorageError::NodeDown(_)) => {}
                Err(e) => return Err(e),
            }
        }
        agg.sealed = self.cluster.is_sealed(bag)?;
        Ok(agg)
    }
}

impl Drop for RpcPort {
    fn drop(&mut self) {
        // Best effort: a port dropped with staged chunks still owes them
        // to the wire. Errors are unreportable here, and a destructor
        // must not hang teardown on a wedged node — cap the per-request
        // wait (flush's reroute walk is bounded by nodes × this cap).
        // Callers that need the outcome flush explicitly (the engine's
        // writers do).
        if self.staged_len > 0 {
            self.timeout = self.timeout.min(Duration::from_millis(500));
            let _ = self.flush();
        }
    }
}

/// Maps an off-protocol reply (wrong response variant for the request —
/// impossible with [`dispatch`], conceivable with a buggy remote server)
/// onto a transport-level error.
fn protocol_violation(node: StorageNodeId, _got: &StorageResponse) -> StorageError {
    StorageError::Disconnected(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;

    fn chunk(v: u8) -> Chunk {
        Chunk::from_vec(vec![v])
    }

    #[test]
    fn dispatch_covers_roundtrip() {
        let node = StorageNode::new(StorageNodeId(0));
        let bag = BagId(1);
        let r = dispatch(
            &node,
            StorageRequest::InsertBatch {
                bag,
                origin: 0,
                run: next_run_id(),
                chunks: vec![chunk(1), chunk(2)].into(),
            },
        )
        .unwrap();
        assert_eq!(r, StorageResponse::Inserted);
        match dispatch(&node, StorageRequest::Sample { bag }).unwrap() {
            StorageResponse::Sampled(s) => assert_eq!(s.total_chunks, 2),
            other => panic!("wrong response {other:?}"),
        }
        match dispatch(
            &node,
            StorageRequest::RemoveBatch {
                bag,
                origin: 0,
                max_n: 8,
            },
        )
        .unwrap()
        {
            StorageResponse::Removed(b) => assert_eq!(b.chunks.len(), 2),
            other => panic!("wrong response {other:?}"),
        }
        assert_eq!(
            dispatch(&node, StorageRequest::Ping).unwrap(),
            StorageResponse::Pong
        );
    }

    #[test]
    fn dispatch_reports_node_errors() {
        let node = StorageNode::new(StorageNodeId(3));
        node.fail();
        let e = dispatch(&node, StorageRequest::Sample { bag: BagId(0) }).unwrap_err();
        assert_eq!(e, StorageError::NodeDown(StorageNodeId(3)));
    }

    #[test]
    fn server_roundtrip_over_channel_transport() {
        let node = Arc::new(StorageNode::new(StorageNodeId(0)));
        let server = NodeServerHandle::spawn(node, 2);
        let mut conn = NodeConnection::new(Box::new(server.connect()));
        let bag = BagId(9);
        let t = conn
            .submit(StorageRequest::InsertBatch {
                bag,
                origin: 0,
                run: next_run_id(),
                chunks: vec![chunk(7)].into(),
            })
            .unwrap();
        assert_eq!(
            conn.wait(t, Duration::from_secs(1)).unwrap(),
            StorageResponse::Inserted
        );
        match conn
            .call(
                StorageRequest::RemoveBatch {
                    bag,
                    origin: 0,
                    max_n: 4,
                },
                Duration::from_secs(1),
            )
            .unwrap()
        {
            StorageResponse::Removed(b) => assert_eq!(b.chunks, vec![chunk(7)]),
            other => panic!("wrong response {other:?}"),
        }
        server.shutdown();
        assert!(matches!(
            conn.submit(StorageRequest::Ping),
            Err(StorageError::Disconnected(_))
        ));
    }

    #[test]
    fn out_of_order_replies_correlate() {
        let (transport, mut server) = loopback(StorageNodeId(5));
        let mut conn = NodeConnection::new(Box::new(transport));
        let a = conn.submit(StorageRequest::Ping).unwrap();
        let b = conn.submit(StorageRequest::IsDrained).unwrap();
        let ea = server.recv(Duration::from_millis(100)).unwrap();
        let eb = server.recv(Duration::from_millis(100)).unwrap();
        // Reply to b first, then a — tokens must still match.
        assert!(server.reply(eb.id, Ok(StorageResponse::Drained(true))));
        assert!(server.reply(ea.id, Ok(StorageResponse::Pong)));
        assert_eq!(
            conn.wait(a, Duration::from_secs(1)).unwrap(),
            StorageResponse::Pong
        );
        assert_eq!(
            conn.wait(b, Duration::from_secs(1)).unwrap(),
            StorageResponse::Drained(true)
        );
        assert_eq!(conn.outstanding(), 0);
    }

    #[test]
    fn wait_times_out_and_discards_late_reply() {
        let (transport, mut server) = loopback(StorageNodeId(1));
        let mut conn = NodeConnection::new(Box::new(transport));
        let t = conn.submit(StorageRequest::Ping).unwrap();
        assert_eq!(
            conn.wait(t, Duration::from_millis(20)),
            Err(StorageError::Timeout(StorageNodeId(1)))
        );
        // A late reply to the abandoned request must not leak into the
        // next token's completion.
        let env = server.recv(Duration::from_millis(100)).unwrap();
        assert!(server.reply(env.id, Ok(StorageResponse::Pong)));
        let t2 = conn.submit(StorageRequest::IsDrained).unwrap();
        let env2 = server.recv(Duration::from_millis(100)).unwrap();
        assert!(server.reply(env2.id, Ok(StorageResponse::Drained(false))));
        assert_eq!(
            conn.wait(t2, Duration::from_secs(1)).unwrap(),
            StorageResponse::Drained(false)
        );
    }

    #[test]
    fn port_insert_remove_with_replication() {
        let cluster = StorageCluster::new(3, ClusterConfig { replication: 2 });
        let rpc = StorageRpc::serve(cluster.clone());
        let bag = cluster.create_bag();
        let mut port = rpc.port();
        port.insert_batch(0, bag, &[chunk(1), chunk(2)]).unwrap();
        // Backup holds the mirrored copies under origin 0.
        assert_eq!(cluster.node(1).snapshot_from(bag, 0).unwrap().len(), 2);
        let got = port.remove_batch(0, bag, 10).unwrap();
        assert_eq!(got.chunks.len(), 2);
        // The mirror advanced the backup pointer: failover serves nothing.
        cluster.node(0).fail();
        cluster.seal_bag(bag).unwrap();
        let rest = port.remove_batch(0, bag, 10).unwrap();
        assert!(rest.chunks.is_empty() && rest.eof);
    }

    #[test]
    fn port_grows_with_membership() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let rpc = StorageRpc::serve(cluster.clone());
        let bag = cluster.create_bag();
        let mut port = rpc.port();
        assert_eq!(port.num_nodes(), 2);
        assert!(!port.refresh_membership(), "no change, no growth");
        // A node joins mid-job: served and published by sync, picked up
        // by the existing port at its next refresh.
        let idx = cluster.add_node();
        rpc.sync();
        assert!(port.refresh_membership());
        assert_eq!(port.num_nodes(), 3);
        port.insert_batch(idx, bag, &[chunk(9)]).unwrap();
        assert_eq!(cluster.node(idx).sample(bag).unwrap().total_chunks, 1);
        let got = port.remove_batch(idx, bag, 4).unwrap();
        assert_eq!(got.chunks, vec![chunk(9)]);
    }

    #[test]
    fn undialable_member_gets_placeholder_and_redials_on_epoch_move() {
        use crate::membership::{Connect, Membership};
        use std::sync::atomic::{AtomicBool, Ordering};

        /// Refuses dials until `up` flips, then connects inline.
        struct Flaky {
            node: Arc<StorageNode>,
            up: AtomicBool,
        }
        impl std::fmt::Debug for Flaky {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct("Flaky")
                    .field("node", &self.node.id())
                    .finish()
            }
        }
        impl Connect for Flaky {
            fn connect(&self) -> Result<Box<dyn Transport>, StorageError> {
                if self.up.load(Ordering::Acquire) {
                    Ok(Box::new(InlineTransport::new(self.node.clone())))
                } else {
                    Err(StorageError::Disconnected(self.node.id()))
                }
            }
        }

        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let bag = cluster.create_bag();
        let membership = Membership::new();
        membership.join(Arc::new(Flaky {
            node: cluster.node(0),
            up: AtomicBool::new(true),
        }));
        let flaky = Arc::new(Flaky {
            node: cluster.node(1),
            up: AtomicBool::new(false),
        });
        membership.join(flaky.clone());

        // The dead member does not truncate the connection set: the port
        // covers the full view, with a placeholder that fails over.
        let mut port =
            RpcPort::from_membership(cluster.clone(), membership.clone(), Duration::from_secs(5));
        assert_eq!(port.num_nodes(), 2);
        assert_eq!(
            port.insert_batch(1, bag, &[chunk(7)]).unwrap_err(),
            StorageError::Disconnected(StorageNodeId(1))
        );
        port.insert_batch(0, bag, &[chunk(7)]).unwrap();

        // Node 1 comes up and the view changes (a third member joins):
        // the refresh re-dials the placeholder slot.
        flaky.up.store(true, Ordering::Release);
        let idx = cluster.add_node();
        membership.join(Arc::new(Flaky {
            node: cluster.node(idx),
            up: AtomicBool::new(true),
        }));
        assert!(port.refresh_membership());
        assert_eq!(port.num_nodes(), 3);
        port.insert_batch(1, bag, &[chunk(8)]).unwrap();
        assert_eq!(cluster.node(1).sample(bag).unwrap().total_chunks, 1);
    }

    #[test]
    fn fresh_port_sees_synced_nodes_immediately() {
        let cluster = StorageCluster::new(1, ClusterConfig::default());
        let rpc = StorageRpc::serve(cluster.clone());
        cluster.add_node();
        rpc.sync();
        assert_eq!(rpc.num_nodes(), 2);
        assert_eq!(rpc.port().num_nodes(), 2);
    }

    #[test]
    fn drain_request_starts_node_draining() {
        let node = StorageNode::new(StorageNodeId(0));
        assert_eq!(
            dispatch(&node, StorageRequest::Drain).unwrap(),
            StorageResponse::Done
        );
        let e = dispatch(
            &node,
            StorageRequest::InsertBatch {
                bag: BagId(1),
                origin: 0,
                run: next_run_id(),
                chunks: vec![chunk(1)].into(),
            },
        )
        .unwrap_err();
        assert_eq!(e, StorageError::NodeDraining(StorageNodeId(0)));
    }

    #[test]
    fn inline_transport_speaks_the_same_protocol() {
        let cluster = StorageCluster::new(3, ClusterConfig { replication: 2 });
        let bag = cluster.create_bag();
        let mut port = RpcPort::inline(cluster.clone());
        port.insert_batch(0, bag, &[chunk(1), chunk(2)]).unwrap();
        assert_eq!(cluster.node(1).snapshot_from(bag, 0).unwrap().len(), 2);
        let got = port.remove_batch(0, bag, 10).unwrap();
        assert_eq!(got.chunks.len(), 2);
        // Mirrors flowed inline too: failover after seal serves nothing.
        cluster.node(0).fail();
        cluster.seal_bag(bag).unwrap();
        let rest = port.remove_batch(0, bag, 10).unwrap();
        assert!(rest.chunks.is_empty() && rest.eof);
    }

    #[test]
    fn chunk_run_clones_share_backing_storage() {
        let run = ChunkRun::new(vec![chunk(1), chunk(2)]);
        let copy = run.clone();
        // Slice pointer equality: the clone views the same Arc'd buffer —
        // replica fan-out and reroutes never duplicate the chunks.
        assert_eq!(run.as_ptr(), copy.as_ptr());
        assert_eq!(&run[..], &copy[..]);
    }

    #[test]
    fn slab_reuses_correlation_slots() {
        let node = Arc::new(StorageNode::new(StorageNodeId(4)));
        let mut conn = NodeConnection::new(Box::new(InlineTransport::new(node)));
        for round in 0..100u64 {
            let t = conn.submit(StorageRequest::Ping).unwrap();
            assert_eq!(
                t.id() & u64::from(u32::MAX),
                0,
                "sequential submit/wait must reuse slot 0 (round {round})"
            );
            assert_eq!(
                conn.wait(t, Duration::from_secs(1)).unwrap(),
                StorageResponse::Pong
            );
        }
        assert_eq!(conn.requests_sent(), 100);
        assert_eq!(conn.outstanding(), 0);
    }

    #[test]
    fn coalescer_merges_cross_batch_runs_per_bag_stream() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let bag_a = cluster.create_bag();
        let bag_b = cluster.create_bag();
        let mut port = RpcPort::inline(cluster.clone());
        port.set_coalescing(1000);
        // Three staging calls interleaving two bags; nothing flushes yet.
        port.insert_buckets(bag_a, &mut [vec![chunk(0)], vec![chunk(1)]])
            .unwrap();
        port.insert_buckets(bag_b, &mut [vec![chunk(10)], vec![]])
            .unwrap();
        port.insert_buckets(bag_a, &mut [vec![chunk(2)], vec![chunk(3)]])
            .unwrap();
        assert_eq!(port.staged_chunks(), 5);
        assert_eq!(port.stats().insert_envelopes, 0, "still staged");
        port.flush().unwrap();
        // One envelope per (node, bag): node 0 carries bag_a and bag_b,
        // node 1 carries bag_a — three envelopes for five chunks across
        // three calls, and per-stream order is preserved.
        assert_eq!(port.stats().insert_envelopes, 3);
        assert_eq!(port.stats().flushes, 1);
        assert_eq!(
            cluster.node(0).snapshot_from(bag_a, 0).unwrap(),
            vec![chunk(0), chunk(2)]
        );
        assert_eq!(
            cluster.node(1).snapshot_from(bag_a, 1).unwrap(),
            vec![chunk(1), chunk(3)]
        );
        assert_eq!(
            cluster.node(0).snapshot_from(bag_b, 0).unwrap(),
            vec![chunk(10)]
        );
    }

    #[test]
    fn coalesced_port_reads_its_own_writes() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut port = RpcPort::inline(cluster.clone());
        port.set_coalescing(1_000_000);
        port.insert_buckets(bag, &mut [vec![chunk(1)], vec![chunk(2)]])
            .unwrap();
        assert_eq!(port.staged_chunks(), 2);
        // A read through the same port flushes the stage first.
        let got = port.remove_batch(0, bag, 10).unwrap();
        assert_eq!(got.chunks, vec![chunk(1)]);
        assert_eq!(port.staged_chunks(), 0);
        // Sampling likewise sees staged inserts.
        port.insert_buckets(bag, &mut [vec![chunk(3)], vec![]])
            .unwrap();
        let s = port.sample_bag(bag).unwrap();
        assert_eq!(s.total_chunks, 3);
    }

    #[test]
    fn dropping_a_port_flushes_staged_inserts() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let bag = cluster.create_bag();
        {
            let mut port = RpcPort::inline(cluster.clone());
            port.set_coalescing(1_000_000);
            port.insert_buckets(bag, &mut [vec![chunk(7)], vec![chunk(8)]])
                .unwrap();
        }
        assert_eq!(cluster.sample_bag(bag).unwrap().total_chunks, 2);
    }

    #[test]
    fn port_sample_merges_nodes() {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let rpc = StorageRpc::serve(cluster.clone());
        let bag = cluster.create_bag();
        let mut port = rpc.port();
        port.insert_batch(0, bag, &[chunk(1)]).unwrap();
        port.insert_batch(1, bag, &[chunk(2), chunk(3)]).unwrap();
        let s = port.sample_bag(bag).unwrap();
        assert_eq!(s.total_chunks, 3);
        assert!(!s.sealed);
    }

    #[test]
    fn duplicated_insert_envelope_is_suppressed() {
        let node = StorageNode::new(StorageNodeId(0));
        let dedup = ServerDedup::new();
        let bag = BagId(1);
        let env = RequestEnvelope {
            id: 77,
            client: 5,
            seq: 0,
            request: StorageRequest::InsertBatch {
                bag,
                origin: 0,
                run: next_run_id(),
                chunks: vec![chunk(1), chunk(2)].into(),
            },
        };
        // First delivery executes.
        let r1 = serve_deduped(&node, &dedup, env.clone()).unwrap();
        assert_eq!(r1.result, Ok(StorageResponse::Inserted));
        // An exact duplicate of the same envelope replays, never
        // re-executes: the node still holds exactly two chunks.
        let r2 = serve_deduped(&node, &dedup, env.clone()).unwrap();
        assert_eq!(r2.result, Ok(StorageResponse::Inserted));
        // A retransmission (same seq, fresh correlation id) likewise.
        let retry = RequestEnvelope { id: 99, ..env };
        let r3 = serve_deduped(&node, &dedup, retry).unwrap();
        assert_eq!(r3.id, 99);
        assert_eq!(r3.result, Ok(StorageResponse::Inserted));
        assert_eq!(
            node.sample(bag).unwrap().total_chunks,
            2,
            "no double insert"
        );
    }

    #[test]
    fn dedup_replays_remove_results_and_errors() {
        let node = StorageNode::new(StorageNodeId(0));
        let dedup = ServerDedup::new();
        let bag = BagId(2);
        dispatch(
            &node,
            StorageRequest::InsertBatch {
                bag,
                origin: 0,
                run: next_run_id(),
                chunks: vec![chunk(9)].into(),
            },
        )
        .unwrap();
        let env = RequestEnvelope {
            id: 1,
            client: 8,
            seq: 0,
            request: StorageRequest::RemoveBatch {
                bag,
                origin: 0,
                max_n: 4,
            },
        };
        let first = serve_deduped(&node, &dedup, env.clone()).unwrap();
        // A lost-reply retransmission recovers the *same* chunks instead
        // of consuming (and losing) a fresh batch.
        let replay = serve_deduped(&node, &dedup, RequestEnvelope { id: 2, ..env }).unwrap();
        assert_eq!(first.result, replay.result);
        // Errors are cached too: the first outcome is the outcome, even
        // if the node recovers before the retransmission arrives.
        node.fail();
        let bad = RequestEnvelope {
            id: 3,
            client: 8,
            seq: 1,
            request: StorageRequest::RemoveBatch {
                bag,
                origin: 0,
                max_n: 1,
            },
        };
        let e1 = serve_deduped(&node, &dedup, bad.clone()).unwrap();
        node.recover();
        let e2 = serve_deduped(&node, &dedup, RequestEnvelope { id: 4, ..bad }).unwrap();
        assert!(e1.result.is_err());
        assert_eq!(e1.result, e2.result);
    }

    #[test]
    fn dedup_suppresses_duplicate_racing_a_running_execution() {
        let dedup = ServerDedup::new();
        assert_eq!(dedup.begin(1, 0), Served::Execute);
        // The duplicate arrives while the original still runs on another
        // dispatch thread: dropped without a reply.
        assert_eq!(dedup.begin(1, 0), Served::Suppressed);
        dedup.complete(1, 0, &Ok(StorageResponse::Inserted));
        assert!(matches!(dedup.begin(1, 0), Served::Replayed(_)));
        // A different client's seq 0 is a different request.
        assert_eq!(dedup.begin(2, 0), Served::Execute);
    }

    #[test]
    fn dedup_window_evicts_oldest_completed_entries() {
        let dedup = ServerDedup::new();
        for seq in 0..(super::DEDUP_WINDOW as u64 + 8) {
            assert_eq!(dedup.begin(3, seq), Served::Execute);
            dedup.complete(3, seq, &Ok(StorageResponse::Done));
        }
        // Seq 0 fell out of the window: a (very) late duplicate would
        // re-execute, which the bounded window accepts.
        assert_eq!(dedup.begin(3, 0), Served::Execute);
        // Recent entries still replay.
        assert!(matches!(
            dedup.begin(3, super::DEDUP_WINDOW as u64 + 7),
            Served::Replayed(_)
        ));
    }

    #[test]
    fn retry_resubmits_same_seq_with_fresh_correlation_id() {
        let (transport, mut server) = loopback(StorageNodeId(2));
        let mut conn = NodeConnection::new(Box::new(transport));
        conn.set_retry_policy(RetryPolicy {
            attempts: 2,
            backoff: Duration::ZERO,
        });
        let server_thread = std::thread::spawn(move || {
            // Swallow the first attempt, answer the second.
            let first = server.recv(Duration::from_secs(2)).unwrap();
            let second = server.recv(Duration::from_secs(2)).unwrap();
            assert_eq!(first.seq, second.seq, "retry reuses the sequence number");
            assert_eq!(first.client, second.client);
            assert_ne!(first.id, second.id, "each attempt gets a fresh id");
            assert!(server.reply(second.id, Ok(StorageResponse::Pong)));
        });
        let got = conn.call(StorageRequest::Ping, Duration::from_millis(50));
        assert_eq!(got, Ok(StorageResponse::Pong));
        server_thread.join().unwrap();
    }

    #[test]
    fn retry_disabled_by_default_preserves_fail_fast_timeouts() {
        let (transport, _server) = loopback(StorageNodeId(6));
        let mut conn = NodeConnection::new(Box::new(transport));
        let start = Instant::now();
        let got = conn.call(StorageRequest::Ping, Duration::from_millis(20));
        assert_eq!(got, Err(StorageError::Timeout(StorageNodeId(6))));
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "no hidden retries by default"
        );
    }

    #[test]
    fn idempotency_classification_covers_the_request_set() {
        let bag = BagId(0);
        assert!(!StorageRequest::InsertBatch {
            bag,
            origin: 0,
            run: 1,
            chunks: vec![].into()
        }
        .is_idempotent());
        assert!(!StorageRequest::RemoveBatch {
            bag,
            origin: 0,
            max_n: 1
        }
        .is_idempotent());
        assert!(!StorageRequest::MirrorConsumed {
            bag,
            origin: 0,
            tags: vec![TagSegment {
                run: 1,
                start: 0,
                len: 1
            }]
        }
        .is_idempotent());
        assert!(!StorageRequest::Rewind { bag }.is_idempotent());
        assert!(!StorageRequest::Discard { bag }.is_idempotent());
        assert!(!StorageRequest::Collect { bag }.is_idempotent());
        assert!(StorageRequest::Sample { bag }.is_idempotent());
        assert!(StorageRequest::ReadAt { bag, index: 0 }.is_idempotent());
        assert!(StorageRequest::Snapshot { bag }.is_idempotent());
        assert!(StorageRequest::SnapshotFrom { bag, origin: 0 }.is_idempotent());
        assert!(StorageRequest::Seal { bag }.is_idempotent());
        assert!(StorageRequest::Drain.is_idempotent());
        assert!(StorageRequest::IsDrained.is_idempotent());
        assert!(StorageRequest::Ping.is_idempotent());
    }
}
