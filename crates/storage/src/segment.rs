//! Durable segment logs: the on-disk form of a bag (`SEGMENT.md`).
//!
//! Each `(bag, origin)` chunk stream of a [`crate::StorageNode`] is
//! backed by one append-only *segment log*; bag-level lifecycle events
//! (seal / discard / collect) go to a per-bag *meta log*. Every record
//! is a length-prefixed frame reusing the wire codec's varints
//! (`WIRE.md`) with a CRC32 trailer, so a restart can rebuild bags,
//! running counters, and consumed-pointer state by scanning the logs —
//! and a torn tail (the process died mid-append) is detected and
//! truncated rather than misparsed.
//!
//! Frame layout (all integers little-endian; varints are LEB128):
//!
//! ```text
//! frame   := varint(len(body)) body crc32(body)   -- crc is 4 bytes LE
//! body    := DATA | CONSUME | REWIND              -- segment logs
//!          | SEAL | DISCARD | COLLECT             -- meta logs
//! DATA    := 0x01 varint(run) varint(k) payload   -- one chunk, tagged
//! CONSUME := 0x02 varint(n) { varint(run) varint(start) varint(len) }*n
//! REWIND  := 0x03
//! SEAL    := 0x01     DISCARD := 0x02     COLLECT := 0x03
//! ```
//!
//! `DATA` frames double as the spill index: a node over its resident
//! budget drops the in-memory copy and keeps only `(offset, frame_len)`,
//! re-reading the frame on demand — the frame locations recorded at
//! append time give fixed-stride-free random access without a separate
//! index file.
//!
//! The medium is abstracted by [`SegmentStore`]: a directory on disk
//! (`hurricane-node --data-dir`) or a process-shared in-memory map
//! ([`SegmentStore::mem`]) that the fault simulator uses as a *virtual
//! disk* — crash/restart scenarios then exercise the real recovery scan
//! with zero real I/O.
//!
//! Appends go through the OS page cache (which survives SIGKILL; fsync
//! happens on graceful shutdown via [`crate::StorageNode::sync_all`]).
//! An append or spilled-read I/O error is *not* fatal: it surfaces as a
//! typed [`crate::StorageError`] (`DiskFull` for `ENOSPC`, `DiskIo`
//! otherwise) and the failed operation is refused — journal-before-
//! mutate ordering means refused operations leave no unjournaled state
//! behind, and replicated callers route around the sick node. A stream
//! whose append failed is *poisoned* against further appends so a later
//! success cannot bury torn bytes inside the log (see `SEGMENT.md`,
//! "Error handling").

use crate::node::TagSegment;
use hurricane_common::BagId;
use hurricane_format::varint;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::PathBuf;
use std::sync::Arc;

/// Record tag: one chunk with its `(run, k)` identity.
pub const REC_DATA: u8 = 0x01;
/// Record tag: consumed-pointer advance (a local serve or a mirror).
pub const REC_CONSUME: u8 = 0x02;
/// Record tag: read pointer reset.
pub const REC_REWIND: u8 = 0x03;
/// Meta-log record tag: the bag was sealed.
pub const META_SEAL: u8 = 0x01;
/// Meta-log record tag: the bag was discarded (data logs truncated,
/// seal cleared, bag reopened for inserts).
pub const META_DISCARD: u8 = 0x02;
/// Meta-log record tag: the bag was garbage-collected.
pub const META_COLLECT: u8 = 0x03;

/// Upper bound on one frame's body, mirroring the wire codec's
/// [`crate::wire::MAX_FRAME_LEN`]: a scanned length prefix above this is
/// treated as a torn tail, not an allocation request.
pub const MAX_BODY_LEN: usize = 80 * 1024 * 1024;

// -- CRC32 (IEEE 802.3, the zlib polynomial), table-driven ----------------

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC32 (IEEE) of `bytes` — the per-frame checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// -- frame codec ----------------------------------------------------------

/// Appends one framed record (`varint(len) ++ body ++ crc32(body)`) to
/// `out`.
pub fn encode_frame(body: &[u8], out: &mut Vec<u8>) {
    varint::encode(body.len() as u64, out);
    out.extend_from_slice(body);
    out.extend_from_slice(&crc32(body).to_le_bytes());
}

/// One encoded `DATA` frame: chunk `payload` tagged `(run, k)`.
pub fn data_frame(run: u64, k: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 3 * varint::MAX_VARINT_LEN + 5);
    data_frame_into(run, k, payload, &mut out);
    out
}

/// Appends one encoded `DATA` frame to `out` — the batched form of
/// [`data_frame`], used to journal a whole insert run in one append.
pub fn data_frame_into(run: u64, k: u32, payload: &[u8], out: &mut Vec<u8>) {
    let mut body = Vec::with_capacity(1 + 2 * varint::MAX_VARINT_LEN + payload.len());
    body.push(REC_DATA);
    varint::encode(run, &mut body);
    varint::encode(u64::from(k), &mut body);
    body.extend_from_slice(payload);
    encode_frame(&body, out);
}

/// One encoded `CONSUME` frame naming the consumed chunk identities.
pub fn consume_frame(tags: &[TagSegment]) -> Vec<u8> {
    let mut body = Vec::with_capacity(2 + tags.len() * 3 * varint::MAX_VARINT_LEN);
    body.push(REC_CONSUME);
    varint::encode(tags.len() as u64, &mut body);
    for t in tags {
        varint::encode(t.run, &mut body);
        varint::encode(u64::from(t.start), &mut body);
        varint::encode(u64::from(t.len), &mut body);
    }
    let mut out = Vec::new();
    encode_frame(&body, &mut out);
    out
}

/// One encoded `REWIND` frame.
pub fn rewind_frame() -> Vec<u8> {
    let mut out = Vec::new();
    encode_frame(&[REC_REWIND], &mut out);
    out
}

/// One encoded meta-log frame (`META_SEAL` / `META_DISCARD` /
/// `META_COLLECT`).
pub fn meta_frame(tag: u8) -> Vec<u8> {
    let mut out = Vec::new();
    encode_frame(&[tag], &mut out);
    out
}

/// A decoded segment-log record, payload left in place (the scan hands
/// back lengths, not copies — recovered chunks start spilled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// One chunk: identity tag plus payload length (the payload itself
    /// stays in the log until read on demand).
    Data {
        /// Insert-run id.
        run: u64,
        /// Position within the run.
        k: u32,
        /// Chunk payload length in bytes.
        payload_len: u32,
    },
    /// Consumed-pointer advance: the identities a serve consumed.
    Consume(Vec<TagSegment>),
    /// Read-pointer reset.
    Rewind,
}

/// One frame recovered by [`scan`]: its location (the spill index) plus
/// the decoded record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScannedFrame {
    /// Byte offset of the frame's start (the length prefix) in the log.
    pub offset: u64,
    /// Total encoded frame length (prefix + body + CRC).
    pub frame_len: u32,
    /// The decoded record.
    pub record: Record,
}

fn decode_record(body: &[u8]) -> Option<Record> {
    let (&tag, mut rest) = body.split_first()?;
    match tag {
        REC_DATA => {
            let run = varint::decode(&mut rest).ok()?;
            let k = u32::try_from(varint::decode(&mut rest).ok()?).ok()?;
            Some(Record::Data {
                run,
                k,
                payload_len: u32::try_from(rest.len()).ok()?,
            })
        }
        REC_CONSUME => {
            let n = varint::decode(&mut rest).ok()?;
            // Hostile-length guard, as in the wire codec: each tag costs
            // at least 3 bytes, so a huge count in a short body is torn.
            if n > (rest.len() / 3) as u64 {
                return None;
            }
            let mut tags = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let run = varint::decode(&mut rest).ok()?;
                let start = u32::try_from(varint::decode(&mut rest).ok()?).ok()?;
                let len = u32::try_from(varint::decode(&mut rest).ok()?).ok()?;
                tags.push(TagSegment { run, start, len });
            }
            rest.is_empty().then_some(Record::Consume(tags))
        }
        REC_REWIND => rest.is_empty().then_some(Record::Rewind),
        _ => None,
    }
}

/// Decodes one `DATA` frame read back from a log (a spilled-chunk read):
/// verifies the CRC and returns `(run, k, payload)`. `None` means the
/// bytes do not hold an intact `DATA` frame.
pub fn decode_data_frame(frame: &[u8]) -> Option<(u64, u32, &[u8])> {
    let mut input = frame;
    let body_len = usize::try_from(varint::decode(&mut input).ok()?).ok()?;
    if input.len() < body_len + 4 {
        return None;
    }
    let body = &input[..body_len];
    let crc = u32::from_le_bytes(input[body_len..body_len + 4].try_into().ok()?);
    if crc != crc32(body) {
        return None;
    }
    let (&tag, mut rest) = body.split_first()?;
    if tag != REC_DATA {
        return None;
    }
    let run = varint::decode(&mut rest).ok()?;
    let k = u32::try_from(varint::decode(&mut rest).ok()?).ok()?;
    Some((run, k, rest))
}

/// Walks one frame at `offset`: returns the body's byte range and the
/// total frame length when the frame is intact (CRC included), `None`
/// when the bytes there are a torn tail.
fn frame_at(data: &[u8], offset: usize) -> Option<(std::ops::Range<usize>, usize)> {
    let mut input = &data[offset..];
    let before = input.len();
    let body_len = usize::try_from(varint::decode(&mut input).ok()?).ok()?;
    if body_len > MAX_BODY_LEN || input.len() < body_len + 4 {
        return None;
    }
    let prefix_len = before - input.len();
    let body_start = offset + prefix_len;
    let body = &data[body_start..body_start + body_len];
    let crc_bytes = &data[body_start + body_len..body_start + body_len + 4];
    let crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    (crc == crc32(body)).then_some((body_start..body_start + body_len, prefix_len + body_len + 4))
}

/// Scans a segment (data) log from the start, returning every intact
/// frame and the byte length of the valid prefix. The first ill-formed
/// frame — a truncated or absurd length prefix, a short body, a CRC
/// mismatch, or an unknown record — ends the scan: everything from that
/// offset on is a torn tail the opener must truncate away.
pub fn scan(data: &[u8]) -> (Vec<ScannedFrame>, u64) {
    let mut frames = Vec::new();
    let mut offset = 0usize;
    while offset < data.len() {
        let Some((body, frame_len)) = frame_at(data, offset) else {
            break;
        };
        let Some(record) = decode_record(&data[body]) else {
            break;
        };
        frames.push(ScannedFrame {
            offset: offset as u64,
            frame_len: frame_len as u32,
            record,
        });
        offset += frame_len;
    }
    (frames, offset as u64)
}

/// Scans a meta log: returns the lifecycle event tags ([`META_SEAL`] /
/// [`META_DISCARD`] / [`META_COLLECT`]) in append order plus the valid
/// prefix length, with the same torn-tail contract as [`scan`].
pub fn scan_meta(data: &[u8]) -> (Vec<u8>, u64) {
    let mut events = Vec::new();
    let mut offset = 0usize;
    while offset < data.len() {
        let Some((body, frame_len)) = frame_at(data, offset) else {
            break;
        };
        let body = &data[body];
        match body {
            [tag @ (META_SEAL | META_DISCARD | META_COLLECT)] => events.push(*tag),
            _ => break,
        }
        offset += frame_len;
    }
    (events, offset as u64)
}

// -- log naming -----------------------------------------------------------

/// Store-relative name of `bag`'s segment log for origin stream
/// `origin`.
pub fn data_log_name(bag: BagId, origin: u32) -> String {
    format!("bag-{}/seg-{origin}.log", bag.0)
}

/// Store-relative name of `bag`'s meta log.
pub fn meta_log_name(bag: BagId) -> String {
    format!("bag-{}/meta.log", bag.0)
}

/// What a store-relative log name identifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogKind {
    /// A per-origin segment log.
    Data(u32),
    /// The bag's meta log.
    Meta,
}

/// Parses a name produced by [`data_log_name`] / [`meta_log_name`].
/// Unrecognized names (editor droppings, future formats) return `None`
/// and are skipped by the recovery scan.
pub fn parse_log_name(name: &str) -> Option<(BagId, LogKind)> {
    let (dir, file) = name.split_once('/')?;
    let bag = BagId(dir.strip_prefix("bag-")?.parse().ok()?);
    if file == "meta.log" {
        return Some((bag, LogKind::Meta));
    }
    let origin = file
        .strip_prefix("seg-")?
        .strip_suffix(".log")?
        .parse()
        .ok()?;
    Some((bag, LogKind::Data(origin)))
}

// -- the store ------------------------------------------------------------

/// The shared in-memory medium behind [`SegmentStore::mem`]: a map of
/// store-relative names to byte buffers. The fault simulator holds one
/// per cluster as its virtual disk — node memory is wiped on a crash
/// while the `MemDisk` (held by the simulation, i.e. "the platter")
/// survives for the restart's recovery scan.
#[derive(Default)]
pub struct MemDisk {
    files: Mutex<HashMap<String, Arc<Mutex<Vec<u8>>>>>,
}

/// A pluggable store medium, for wrapping a real store with
/// instrumentation — the fault simulator's `FaultyStore` injects disk
/// faults this way ([`SegmentStore::custom`]). Implementations mirror
/// the corresponding [`SegmentStore`] methods.
pub trait StoreBackend: Send + Sync {
    /// As [`SegmentStore::open_log`].
    fn open_log(&self, name: &str) -> io::Result<SegmentLog>;
    /// As [`SegmentStore::list_logs`].
    fn list_logs(&self) -> io::Result<Vec<String>>;
    /// As [`SegmentStore::subdir`].
    fn subdir(&self, name: &str) -> io::Result<SegmentStore>;
}

/// A pluggable log behind a [`SegmentLog`] handle
/// ([`SegmentLog::custom`]). Implementations mirror the corresponding
/// [`SegmentLog`] methods.
#[allow(clippy::len_without_is_empty)] // mirrors SegmentLog::len, a byte offset
pub trait LogBackend: Send + Sync {
    /// As [`SegmentLog::append`].
    fn append(&self, frame: &[u8]) -> io::Result<u64>;
    /// As [`SegmentLog::read`].
    fn read(&self, offset: u64, len: usize) -> io::Result<Vec<u8>>;
    /// As [`SegmentLog::len`].
    fn len(&self) -> u64;
    /// As [`SegmentLog::read_all`].
    fn read_all(&self) -> io::Result<Vec<u8>>;
    /// As [`SegmentLog::truncate`].
    fn truncate(&self, len: u64) -> io::Result<()>;
    /// As [`SegmentLog::sync`].
    fn sync(&self) -> io::Result<()>;
}

#[derive(Clone)]
enum Medium {
    Disk(PathBuf),
    Mem(Arc<MemDisk>, String),
    Custom(Arc<dyn StoreBackend>),
}

/// A durable medium for segment logs: a directory on disk, or a shared
/// in-memory map (the fault simulator's virtual disk). Cloning shares
/// the medium.
#[derive(Clone)]
pub struct SegmentStore {
    medium: Medium,
}

impl SegmentStore {
    /// A store rooted at directory `root`, created if missing.
    pub fn disk(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Self {
            medium: Medium::Disk(root),
        })
    }

    /// A fresh in-memory store (see [`MemDisk`]).
    pub fn mem() -> Self {
        Self {
            medium: Medium::Mem(Arc::new(MemDisk::default()), String::new()),
        }
    }

    /// A store driven by a custom [`StoreBackend`] — the fault
    /// simulator's injection hook.
    pub fn custom(backend: Arc<dyn StoreBackend>) -> Self {
        Self {
            medium: Medium::Custom(backend),
        }
    }

    /// A namespaced view inside this store (e.g. `node-3`): same medium,
    /// names prefixed. Disk stores create the subdirectory.
    pub fn subdir(&self, name: &str) -> io::Result<Self> {
        let medium = match &self.medium {
            Medium::Disk(root) => {
                let dir = root.join(name);
                fs::create_dir_all(&dir)?;
                Medium::Disk(dir)
            }
            Medium::Mem(disk, prefix) => Medium::Mem(disk.clone(), format!("{prefix}{name}/")),
            Medium::Custom(backend) => return backend.subdir(name),
        };
        Ok(Self { medium })
    }

    /// Opens (creating if absent) the log at store-relative `name`.
    /// Appends resume at the current end; torn-tail truncation is the
    /// recovery scan's job ([`crate::StorageNode::restart_recover`]),
    /// not the opener's.
    pub fn open_log(&self, name: &str) -> io::Result<SegmentLog> {
        match &self.medium {
            Medium::Disk(root) => {
                let path = root.join(name);
                if let Some(parent) = path.parent() {
                    fs::create_dir_all(parent)?;
                }
                let file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(false)
                    .open(&path)?;
                let len = file.metadata()?.len();
                Ok(SegmentLog {
                    inner: Arc::new(LogInner::Disk {
                        file,
                        append: Mutex::new(len),
                    }),
                })
            }
            Medium::Mem(disk, prefix) => {
                let key = format!("{prefix}{name}");
                let data = disk.files.lock().entry(key).or_default().clone();
                Ok(SegmentLog {
                    inner: Arc::new(LogInner::Mem { data }),
                })
            }
            Medium::Custom(backend) => backend.open_log(name),
        }
    }

    /// Store-relative names of every existing log, for the recovery
    /// scan. Order is unspecified.
    pub fn list_logs(&self) -> io::Result<Vec<String>> {
        match &self.medium {
            Medium::Disk(root) => {
                let mut out = Vec::new();
                for entry in fs::read_dir(root)? {
                    let entry = entry?;
                    if !entry.file_type()?.is_dir() {
                        continue;
                    }
                    let dir_name = entry.file_name().to_string_lossy().into_owned();
                    for file in fs::read_dir(entry.path())? {
                        let file = file?;
                        if file.file_type()?.is_file() {
                            let file_name = file.file_name().to_string_lossy().into_owned();
                            out.push(format!("{dir_name}/{file_name}"));
                        }
                    }
                }
                Ok(out)
            }
            Medium::Mem(disk, prefix) => Ok(disk
                .files
                .lock()
                .keys()
                .filter_map(|k| k.strip_prefix(prefix.as_str()))
                .map(str::to_owned)
                .collect()),
            Medium::Custom(backend) => backend.list_logs(),
        }
    }
}

impl std::fmt::Debug for SegmentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.medium {
            Medium::Disk(root) => f.debug_tuple("SegmentStore::Disk").field(root).finish(),
            Medium::Mem(_, prefix) => f.debug_tuple("SegmentStore::Mem").field(prefix).finish(),
            Medium::Custom(_) => f.debug_tuple("SegmentStore::Custom").finish(),
        }
    }
}

enum LogInner {
    Disk {
        file: File,
        /// Append cursor; holding it serializes appends while positioned
        /// reads (`FileExt::read_at`) proceed lock-free.
        append: Mutex<u64>,
    },
    Mem {
        data: Arc<Mutex<Vec<u8>>>,
    },
    Custom(Arc<dyn LogBackend>),
}

/// One append-only log inside a [`SegmentStore`]. Cloning shares the
/// underlying file. Appends are serialized; positioned reads are
/// concurrent with appends (frames are immutable once written).
#[derive(Clone)]
pub struct SegmentLog {
    inner: Arc<LogInner>,
}

impl SegmentLog {
    /// A log driven by a custom [`LogBackend`] — the fault simulator's
    /// injection hook.
    pub fn custom(backend: Arc<dyn LogBackend>) -> Self {
        Self {
            inner: Arc::new(LogInner::Custom(backend)),
        }
    }

    /// Appends an encoded frame, returning the offset it starts at.
    ///
    /// On failure the log is restored to its pre-append length
    /// (best-effort): a short write must not leave torn bytes *inside*
    /// the log where a later successful append would bury them beyond
    /// the recovery scan's torn-tail cut.
    pub fn append(&self, frame: &[u8]) -> io::Result<u64> {
        match &*self.inner {
            LogInner::Disk { file, append } => {
                let mut end = append.lock();
                let offset = *end;
                if let Err(e) = file.write_all_at(frame, offset) {
                    let _ = file.set_len(offset);
                    return Err(e);
                }
                *end = offset + frame.len() as u64;
                Ok(offset)
            }
            LogInner::Mem { data } => {
                let mut data = data.lock();
                let offset = data.len() as u64;
                data.extend_from_slice(frame);
                Ok(offset)
            }
            LogInner::Custom(b) => b.append(frame),
        }
    }

    /// Reads exactly `len` bytes starting at `offset` (a spilled-frame
    /// read against the locations [`scan`] / [`Self::append`] reported).
    pub fn read(&self, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let mut buf = vec![0u8; len];
        match &*self.inner {
            LogInner::Disk { file, .. } => file.read_exact_at(&mut buf, offset)?,
            LogInner::Mem { data } => {
                let data = data.lock();
                let start = usize::try_from(offset)
                    .ok()
                    .filter(|&s| s + len <= data.len())
                    .ok_or(io::ErrorKind::UnexpectedEof)?;
                buf.copy_from_slice(&data[start..start + len]);
            }
            LogInner::Custom(b) => return b.read(offset, len),
        }
        Ok(buf)
    }

    /// Current log length in bytes.
    pub fn len(&self) -> u64 {
        match &*self.inner {
            LogInner::Disk { append, .. } => *append.lock(),
            LogInner::Mem { data } => data.lock().len() as u64,
            LogInner::Custom(b) => b.len(),
        }
    }

    /// Whether the log holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The full log contents (the recovery scan's input).
    pub fn read_all(&self) -> io::Result<Vec<u8>> {
        match &*self.inner {
            LogInner::Disk { file, append } => {
                let len = *append.lock();
                let mut buf = vec![0u8; usize::try_from(len).expect("log fits in memory")];
                file.read_exact_at(&mut buf, 0)?;
                Ok(buf)
            }
            LogInner::Mem { data } => Ok(data.lock().clone()),
            LogInner::Custom(b) => b.read_all(),
        }
    }

    /// Truncates the log to `len` bytes (torn-tail removal on recovery;
    /// `0` on discard/collect).
    pub fn truncate(&self, len: u64) -> io::Result<()> {
        match &*self.inner {
            LogInner::Disk { file, append } => {
                let mut end = append.lock();
                file.set_len(len)?;
                *end = len;
                Ok(())
            }
            LogInner::Mem { data } => {
                let mut data = data.lock();
                let len = usize::try_from(len).unwrap_or(data.len());
                data.truncate(len);
                Ok(())
            }
            LogInner::Custom(b) => b.truncate(len),
        }
    }

    /// Flushes the log to stable storage (fsync; no-op for memory).
    pub fn sync(&self) -> io::Result<()> {
        match &*self.inner {
            LogInner::Disk { file, .. } => file.sync_all(),
            LogInner::Mem { .. } => Ok(()),
            LogInner::Custom(b) => b.sync(),
        }
    }
}

impl std::fmt::Debug for SegmentLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentLog")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE check value: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn data_frame_round_trips() {
        let frame = data_frame(7, 3, b"payload");
        let (run, k, payload) = decode_data_frame(&frame).expect("intact frame");
        assert_eq!((run, k, payload), (7, 3, &b"payload"[..]));
        let (frames, valid) = scan(&frame);
        assert_eq!(valid, frame.len() as u64);
        assert_eq!(
            frames[0].record,
            Record::Data {
                run: 7,
                k: 3,
                payload_len: 7
            }
        );
    }

    #[test]
    fn scan_recovers_sequence_and_locations() {
        let mut log = Vec::new();
        log.extend_from_slice(&data_frame(1, 0, b"aa"));
        let second_at = log.len() as u64;
        log.extend_from_slice(&consume_frame(&[TagSegment {
            run: 1,
            start: 0,
            len: 1,
        }]));
        log.extend_from_slice(&rewind_frame());
        let (frames, valid) = scan(&log);
        assert_eq!(valid, log.len() as u64);
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[1].offset, second_at);
        assert_eq!(
            frames[1].record,
            Record::Consume(vec![TagSegment {
                run: 1,
                start: 0,
                len: 1
            }])
        );
        assert_eq!(frames[2].record, Record::Rewind);
        // The recorded location re-reads the first chunk.
        let first = &log[..frames[0].frame_len as usize];
        assert_eq!(decode_data_frame(first).unwrap().2, b"aa");
    }

    #[test]
    fn torn_tail_is_cut_at_frame_boundary() {
        let mut log = Vec::new();
        log.extend_from_slice(&data_frame(1, 0, b"intact"));
        let boundary = log.len() as u64;
        log.extend_from_slice(&data_frame(1, 1, b"torn"));
        log.truncate(log.len() - 3); // lose part of the CRC
        let (frames, valid) = scan(&log);
        assert_eq!(frames.len(), 1);
        assert_eq!(valid, boundary);
    }

    #[test]
    fn corrupt_byte_fails_crc() {
        let mut frame = data_frame(9, 0, b"bits");
        let mid = frame.len() / 2;
        frame[mid] ^= 0x40;
        assert!(decode_data_frame(&frame).is_none());
        assert_eq!(scan(&frame).0.len(), 0);
    }

    #[test]
    fn meta_log_round_trips_with_torn_tail() {
        let mut log = Vec::new();
        log.extend_from_slice(&meta_frame(META_SEAL));
        log.extend_from_slice(&meta_frame(META_DISCARD));
        log.extend_from_slice(&meta_frame(META_COLLECT));
        let full = log.len() as u64;
        log.push(0x06); // torn: a length prefix with no body
        let (events, valid) = scan_meta(&log);
        assert_eq!(events, vec![META_SEAL, META_DISCARD, META_COLLECT]);
        assert_eq!(valid, full);
    }

    #[test]
    fn log_names_round_trip() {
        let bag = BagId(12);
        assert_eq!(
            parse_log_name(&data_log_name(bag, 3)),
            Some((bag, LogKind::Data(3)))
        );
        assert_eq!(
            parse_log_name(&meta_log_name(bag)),
            Some((bag, LogKind::Meta))
        );
        assert_eq!(parse_log_name("bag-1/garbage.tmp"), None);
        assert_eq!(parse_log_name("lost+found"), None);
    }

    #[test]
    fn mem_store_appends_survive_handle_drop() {
        let store = SegmentStore::mem();
        let node = store.subdir("node-0").unwrap();
        {
            let log = node.open_log("bag-0/seg-0.log").unwrap();
            log.append(&data_frame(1, 0, b"x")).unwrap();
        }
        // A fresh handle (the restart) sees the bytes.
        let log = node.open_log("bag-0/seg-0.log").unwrap();
        let (frames, _) = scan(&log.read_all().unwrap());
        assert_eq!(frames.len(), 1);
        assert_eq!(node.list_logs().unwrap(), vec!["bag-0/seg-0.log"]);
    }

    #[test]
    fn disk_store_round_trips() {
        let root =
            std::env::temp_dir().join(format!("hurricane-segment-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let store = SegmentStore::disk(&root).unwrap();
        let log = store.open_log("bag-4/seg-1.log").unwrap();
        let at = log.append(&data_frame(2, 0, b"disk")).unwrap();
        assert_eq!(at, 0);
        let frame = log.read(0, log.len() as usize).unwrap();
        assert_eq!(decode_data_frame(&frame).unwrap().2, b"disk");
        assert_eq!(store.list_logs().unwrap(), vec!["bag-4/seg-1.log"]);
        // Reopen resumes at the end.
        let again = store.open_log("bag-4/seg-1.log").unwrap();
        let at2 = again.append(&data_frame(2, 1, b"more")).unwrap();
        assert_eq!(at2, frame.len() as u64);
        let (frames, valid) = scan(&again.read_all().unwrap());
        assert_eq!(frames.len(), 2);
        assert_eq!(valid, again.len());
        fs::remove_dir_all(&root).unwrap();
    }
}
