//! Real TCP transport for the storage RPC plane.
//!
//! Everything above this module is transport-agnostic: [`crate::rpc::RpcPort`] talks
//! to a [`Transport`], servers are [`crate::rpc::serve_deduped`] behind a
//! request stream. This module supplies the socket implementations:
//!
//! * [`TcpTransport`] — a client connection: a writer thread owns the
//!   socket's write half (so [`Transport::send`] enqueues and returns, as
//!   the trait demands), a reader thread reassembles frames
//!   ([`crate::wire::FrameBuffer`]) and buffers decoded replies. Any
//!   socket failure latches the connection dead; subsequent operations
//!   report [`StorageError::Disconnected`], which the replica failover
//!   and retry layers already handle.
//! * [`TcpNodeServer`] — serves one [`StorageNode`] on a listener: accept
//!   loop, per-connection service threads, one shared [`ServerDedup`] so
//!   retransmissions are recognized across reconnects.
//! * [`TcpConnector`] — the [`Connect`] factory a [`Membership`] entry
//!   carries for a TCP member.
//! * [`JoinServer`] + [`join_cluster`] — the control plane: a
//!   `hurricane-node` process dials the driver's join listener, announces
//!   its data address, and is appended to the driver's cluster and
//!   membership; the driver replies with the assigned node id.
//!
//! Wire layout is defined in [`crate::wire`] and documented in `WIRE.md`.
//! Each data connection opens with a server-first handshake — magic,
//! version, serving node id — so a client immediately detects version
//! skew or a connection to the wrong node.

use crate::cluster::StorageCluster;
use crate::error::StorageError;
use crate::membership::{Connect, Membership};
use crate::node::StorageNode;
use crate::rpc::{serve_deduped, ReplyEnvelope, RequestEnvelope, ServerDedup, Transport};
use crate::wire::{self, FrameBuffer};
use crossbeam::channel::{unbounded, Receiver, Sender};
use hurricane_common::StorageNodeId;
use hurricane_format::varint;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// First bytes of every data connection, server → client.
pub const DATA_MAGIC: [u8; 4] = *b"HURW";
/// First bytes of every join connection, node → driver.
pub const JOIN_MAGIC: [u8; 4] = *b"HURJ";
/// Wire protocol version; bumped on any layout change (see `WIRE.md`).
/// Version 2 added `resident_bytes` to the `Sampled` payload and the
/// `ClaimConsumed` request / `Claimed` response pair.
pub const WIRE_VERSION: u8 = 2;

/// Read-side buffer size for socket reads.
const READ_BUF: usize = 64 * 1024;
/// Poll interval of non-blocking accept loops.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

fn proto_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Reads one varint byte-at-a-time from a stream (handshake fields only;
/// framed traffic never does per-byte reads).
fn read_varint(stream: &mut TcpStream) -> io::Result<u64> {
    let mut buf = Vec::with_capacity(varint::MAX_VARINT_LEN);
    let mut byte = [0u8; 1];
    loop {
        stream.read_exact(&mut byte)?;
        buf.push(byte[0]);
        if byte[0] & 0x80 == 0 {
            let mut slice = buf.as_slice();
            return varint::decode(&mut slice).map_err(|_| proto_err("invalid varint"));
        }
        if buf.len() >= varint::MAX_VARINT_LEN {
            return Err(proto_err("overlong varint"));
        }
    }
}

// ---------------------------------------------------------------------------
// Client side: TcpTransport + TcpConnector.
// ---------------------------------------------------------------------------

/// A [`Transport`] over one TCP connection to one storage node.
pub struct TcpTransport {
    node: StorageNodeId,
    /// Feeds the writer thread; unbounded, so `send` never blocks on the
    /// socket (the connection layer's credit gate bounds what enters).
    req_tx: Option<Sender<RequestEnvelope>>,
    reply_rx: Receiver<ReplyEnvelope>,
    dead: Arc<AtomicBool>,
    /// Kept to force-close the socket on drop, unblocking both threads.
    stream: TcpStream,
}

impl TcpTransport {
    /// Dials `addr`, performs the handshake, and spawns the reader and
    /// writer threads. When `expect` is given, a handshake announcing a
    /// different node id fails the dial — the guard against a membership
    /// entry pointing at the wrong process.
    pub fn dial(addr: &str, expect: Option<StorageNodeId>) -> io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;

        let mut head = [0u8; 5];
        stream.read_exact(&mut head)?;
        if head[..4] != DATA_MAGIC {
            return Err(proto_err("bad handshake magic"));
        }
        if head[4] != WIRE_VERSION {
            return Err(proto_err("wire version mismatch"));
        }
        let node = StorageNodeId(
            u32::try_from(read_varint(&mut stream)?).map_err(|_| proto_err("bad node id"))?,
        );
        if let Some(want) = expect {
            if node != want {
                return Err(proto_err("connected to the wrong node"));
            }
        }

        let dead = Arc::new(AtomicBool::new(false));
        let (req_tx, req_rx) = unbounded::<RequestEnvelope>();
        let (reply_tx, reply_rx) = unbounded::<ReplyEnvelope>();

        let writer = stream.try_clone()?;
        let wdead = dead.clone();
        std::thread::Builder::new()
            .name(format!("hurricane-tcp-w-{}", node.0))
            .spawn(move || writer_loop(writer, req_rx, wdead))?;

        let reader = stream.try_clone()?;
        let rdead = dead.clone();
        std::thread::Builder::new()
            .name(format!("hurricane-tcp-r-{}", node.0))
            .spawn(move || reader_loop(reader, reply_tx, rdead))?;

        Ok(Self {
            node,
            req_tx: Some(req_tx),
            reply_rx,
            dead,
            stream,
        })
    }
}

fn writer_loop(mut stream: TcpStream, req_rx: Receiver<RequestEnvelope>, dead: Arc<AtomicBool>) {
    let mut payload = Vec::new();
    let mut out = Vec::new();
    while let Ok(env) = req_rx.recv() {
        payload.clear();
        out.clear();
        wire::encode_request(&env, &mut payload);
        wire::frame(&payload, &mut out);
        if stream.write_all(&out).is_err() {
            dead.store(true, Ordering::Release);
            return;
        }
    }
    // Sender dropped: transport is going away. Close the write half so
    // the server sees EOF and tears the connection down.
    let _ = stream.shutdown(Shutdown::Both);
}

fn reader_loop(mut stream: TcpStream, reply_tx: Sender<ReplyEnvelope>, dead: Arc<AtomicBool>) {
    let mut fb = FrameBuffer::new();
    let mut buf = vec![0u8; READ_BUF];
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        fb.push(&buf[..n]);
        loop {
            match fb.next_frame() {
                Ok(Some(frame)) => {
                    let mut slice = frame.as_slice();
                    let reply = match wire::decode_reply(&mut slice) {
                        Ok(r) if slice.is_empty() => r,
                        // Garbled reply: frame boundaries can no longer
                        // be trusted; kill the connection.
                        _ => {
                            dead.store(true, Ordering::Release);
                            let _ = stream.shutdown(Shutdown::Both);
                            return;
                        }
                    };
                    if reply_tx.send(reply).is_err() {
                        return;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    dead.store(true, Ordering::Release);
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
            }
        }
    }
    dead.store(true, Ordering::Release);
}

impl Transport for TcpTransport {
    fn node(&self) -> StorageNodeId {
        self.node
    }

    fn send(&mut self, env: RequestEnvelope) -> Result<(), StorageError> {
        if self.dead.load(Ordering::Acquire) {
            return Err(StorageError::Disconnected(self.node));
        }
        match &self.req_tx {
            Some(tx) if tx.send(env).is_ok() => Ok(()),
            _ => Err(StorageError::Disconnected(self.node)),
        }
    }

    fn try_recv(&mut self) -> Option<ReplyEnvelope> {
        self.reply_rx.try_recv().ok()
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Option<ReplyEnvelope> {
        self.reply_rx.recv_timeout(timeout).ok()
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Dropping the sender stops the writer thread; closing the socket
        // unblocks the reader even if the server never speaks again.
        self.req_tx = None;
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("node", &self.node)
            .field("dead", &self.dead.load(Ordering::Relaxed))
            .finish()
    }
}

/// [`Connect`] factory for a TCP member: dials the node's data address
/// and verifies the handshake announces the expected id.
#[derive(Debug, Clone)]
pub struct TcpConnector {
    /// Node id the membership slot stands for.
    pub node: StorageNodeId,
    /// The node's data listen address (`host:port`).
    pub addr: String,
}

impl Connect for TcpConnector {
    fn connect(&self) -> Result<Box<dyn Transport>, StorageError> {
        match TcpTransport::dial(&self.addr, Some(self.node)) {
            Ok(t) => Ok(Box::new(t)),
            Err(_) => Err(StorageError::Disconnected(self.node)),
        }
    }
}

// ---------------------------------------------------------------------------
// Server side: TcpNodeServer.
// ---------------------------------------------------------------------------

/// Serves one [`StorageNode`] on a TCP listener.
///
/// Each accepted connection gets a service thread: handshake, then a
/// read-dispatch-write loop over framed envelopes. All connections share
/// one [`ServerDedup`], so a retransmission arriving on a *reconnected*
/// socket still replays the original outcome instead of re-executing.
pub struct TcpNodeServer {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<parking_lot::Mutex<Vec<TcpStream>>>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl TcpNodeServer {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts the
    /// accept loop.
    pub fn bind(node: Arc<StorageNode>, addr: &str) -> io::Result<Self> {
        Self::serve_on(node, TcpListener::bind(addr)?)
    }

    /// Starts the accept loop on an already-bound listener.
    ///
    /// This is the joining-node path: `hurricane-node --join` binds its
    /// data listener first (so the address it announces is already
    /// reserved), learns its node id from the driver, and only then has
    /// the [`StorageNode`] to serve — no bind/announce race.
    pub fn serve_on(node: Arc<StorageNode>, listener: TcpListener) -> io::Result<Self> {
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let dedup = Arc::new(ServerDedup::new());

        let tstop = stop.clone();
        let tconns = conns.clone();
        let accept = std::thread::Builder::new()
            .name(format!("hurricane-tcp-accept-{}", node.id().0))
            .spawn(move || {
                while !tstop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if let Ok(clone) = stream.try_clone() {
                                tconns.lock().push(clone);
                            }
                            let node = node.clone();
                            let dedup = dedup.clone();
                            let _ = std::thread::Builder::new()
                                .name("hurricane-tcp-serve".into())
                                .spawn(move || {
                                    let _ = serve_connection(&node, &dedup, stream);
                                });
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => std::thread::sleep(ACCEPT_POLL),
                    }
                }
            })?;

        Ok(Self {
            local,
            stop,
            conns,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Stops accepting, closes every open connection, and joins the
    /// accept loop. Service threads exit as their sockets die.
    pub fn shutdown(mut self) {
        self.stop_now();
    }

    fn stop_now(&mut self) {
        self.stop.store(true, Ordering::Release);
        for conn in self.conns.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpNodeServer {
    fn drop(&mut self) {
        self.stop_now();
    }
}

impl std::fmt::Debug for TcpNodeServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpNodeServer")
            .field("local", &self.local)
            .finish()
    }
}

/// One connection's service loop. Any protocol violation returns and
/// drops the connection; a healthy client sees EOF and fails over.
fn serve_connection(
    node: &StorageNode,
    dedup: &ServerDedup,
    mut stream: TcpStream,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut hello = Vec::with_capacity(5 + varint::MAX_VARINT_LEN);
    hello.extend_from_slice(&DATA_MAGIC);
    hello.push(WIRE_VERSION);
    varint::encode(node.id().0 as u64, &mut hello);
    stream.write_all(&hello)?;

    let mut fb = FrameBuffer::new();
    let mut buf = vec![0u8; READ_BUF];
    let mut payload = Vec::new();
    let mut out = Vec::new();
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(());
        }
        fb.push(&buf[..n]);
        loop {
            let frame = match fb.next_frame() {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                Err(_) => return Err(proto_err("bad frame")),
            };
            let mut slice = frame.as_slice();
            let env = match wire::decode_request(&mut slice) {
                Ok(env) if slice.is_empty() => env,
                _ => return Err(proto_err("bad request payload")),
            };
            if let Some(reply) = serve_deduped(node, dedup, env) {
                payload.clear();
                out.clear();
                wire::encode_reply(&reply, &mut payload);
                wire::frame(&payload, &mut out);
                stream.write_all(&out)?;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Control plane: join protocol.
// ---------------------------------------------------------------------------

/// The driver-side membership listener.
///
/// A starting `hurricane-node` dials this, announces its data address,
/// and the driver appends a shadow node to its cluster (metadata
/// authority: placement, bag registry, seal state) plus a
/// [`TcpConnector`] member to its [`Membership`]. Live ports pick the
/// node up on their next `refresh_membership`.
pub struct JoinServer {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl JoinServer {
    /// Binds the join listener and starts admitting nodes.
    pub fn bind(
        cluster: Arc<StorageCluster>,
        membership: Membership,
        addr: &str,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let tstop = stop.clone();
        let accept = std::thread::Builder::new()
            .name("hurricane-join".into())
            .spawn(move || {
                while !tstop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = admit(&cluster, &membership, stream);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => std::thread::sleep(ACCEPT_POLL),
                    }
                }
            })?;

        Ok(Self {
            local,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Stops admitting joins.
    pub fn shutdown(mut self) {
        self.stop_now();
    }

    fn stop_now(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for JoinServer {
    fn drop(&mut self) {
        self.stop_now();
    }
}

impl std::fmt::Debug for JoinServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinServer")
            .field("local", &self.local)
            .finish()
    }
}

/// Serves one join request: reads the announcement, appends the node,
/// replies with its assigned id.
fn admit(
    cluster: &Arc<StorageCluster>,
    membership: &Membership,
    mut stream: TcpStream,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut head = [0u8; 5];
    stream.read_exact(&mut head)?;
    if head[..4] != JOIN_MAGIC {
        return Err(proto_err("bad join magic"));
    }
    if head[4] != WIRE_VERSION {
        return Err(proto_err("join version mismatch"));
    }
    let len = usize::try_from(read_varint(&mut stream)?).map_err(|_| proto_err("bad addr len"))?;
    if len > 256 {
        return Err(proto_err("join address too long"));
    }
    let mut addr = vec![0u8; len];
    stream.read_exact(&mut addr)?;
    let addr = String::from_utf8(addr).map_err(|_| proto_err("join address not utf-8"))?;

    // Shadow node first, then the member: a refresh that sees the new
    // member must also see the grown cluster (placement sizing).
    let idx = cluster.add_node();
    let node = membership.join(Arc::new(TcpConnector {
        node: StorageNodeId(idx as u32),
        addr,
    }));
    debug_assert_eq!(node.0 as usize, idx, "cluster and membership diverged");

    let mut reply = Vec::with_capacity(varint::MAX_VARINT_LEN);
    varint::encode(node.0 as u64, &mut reply);
    stream.write_all(&reply)
}

/// Node-side half of the join protocol: announces `data_addr` to the
/// driver's [`JoinServer`] at `driver_addr` and returns the node id the
/// driver assigned.
pub fn join_cluster(driver_addr: &str, data_addr: &str) -> io::Result<StorageNodeId> {
    let mut stream = TcpStream::connect(driver_addr)?;
    stream.set_nodelay(true)?;
    let mut msg = Vec::with_capacity(5 + varint::MAX_VARINT_LEN + data_addr.len());
    msg.extend_from_slice(&JOIN_MAGIC);
    msg.push(WIRE_VERSION);
    varint::encode(data_addr.len() as u64, &mut msg);
    msg.extend_from_slice(data_addr.as_bytes());
    stream.write_all(&msg)?;
    let id = read_varint(&mut stream)?;
    Ok(StorageNodeId(
        u32::try_from(id).map_err(|_| proto_err("bad assigned id"))?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::rpc::{StorageRequest, StorageResponse};
    use hurricane_common::BagId;
    use hurricane_format::Chunk;

    fn call(t: &mut dyn Transport, id: u64, seq: u64, request: StorageRequest) -> ReplyEnvelope {
        t.send(RequestEnvelope {
            id,
            client: 1,
            seq,
            request,
        })
        .unwrap();
        t.recv_timeout(Duration::from_secs(5)).expect("reply")
    }

    #[test]
    fn tcp_roundtrip_serves_requests() {
        let node = Arc::new(StorageNode::new(StorageNodeId(0)));
        let server = TcpNodeServer::bind(node, "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();
        let mut t = TcpTransport::dial(&addr, Some(StorageNodeId(0))).unwrap();
        assert_eq!(t.node(), StorageNodeId(0));

        let bag = BagId(1);
        let reply = call(
            &mut t,
            1,
            1,
            StorageRequest::InsertBatch {
                bag,
                origin: 0,
                run: crate::node::next_run_id(),
                chunks: crate::rpc::ChunkRun::new(vec![Chunk::from_vec(vec![1, 2, 3])]),
            },
        );
        assert_eq!(reply.result, Ok(StorageResponse::Inserted));

        let reply = call(&mut t, 2, 2, StorageRequest::Sample { bag });
        match reply.result {
            Ok(StorageResponse::Sampled(s)) => assert_eq!(s.total_chunks, 1),
            other => panic!("unexpected: {other:?}"),
        }

        let reply = call(
            &mut t,
            3,
            3,
            StorageRequest::RemoveBatch {
                bag,
                origin: 0,
                max_n: 4,
            },
        );
        match reply.result {
            Ok(StorageResponse::Removed(b)) => {
                assert_eq!(b.chunks.len(), 1);
                assert_eq!(b.chunks[0].bytes(), &[1, 2, 3]);
                assert!(b.exhausted);
            }
            other => panic!("unexpected: {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn handshake_rejects_wrong_node() {
        let node = Arc::new(StorageNode::new(StorageNodeId(7)));
        let server = TcpNodeServer::bind(node, "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();
        assert!(TcpTransport::dial(&addr, Some(StorageNodeId(0))).is_err());
        assert!(TcpTransport::dial(&addr, Some(StorageNodeId(7))).is_ok());
        server.shutdown();
    }

    #[test]
    fn dead_server_reports_disconnected() {
        let node = Arc::new(StorageNode::new(StorageNodeId(0)));
        let server = TcpNodeServer::bind(node, "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();
        let mut t = TcpTransport::dial(&addr, None).unwrap();
        server.shutdown();
        // The writer may still accept a request into its queue, but the
        // connection latches dead once the socket fails.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let res = t.send(RequestEnvelope {
                id: 1,
                client: 1,
                seq: 1,
                request: StorageRequest::Ping,
            });
            if res.is_err() {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "send never observed the dead connection"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(t.try_recv().is_none());
    }

    #[test]
    fn join_server_admits_nodes_in_order() {
        // Cluster and membership start aligned (one pre-known node, as
        // the TCP endpoint seeds them); every join must keep them so.
        let cluster = StorageCluster::new(1, ClusterConfig::default());
        let membership = Membership::new();
        membership.join(Arc::new(TcpConnector {
            node: StorageNodeId(0),
            addr: "127.0.0.1:9000".into(),
        }));
        let join = JoinServer::bind(cluster.clone(), membership.clone(), "127.0.0.1:0").unwrap();
        let driver = join.local_addr().to_string();

        let a = join_cluster(&driver, "127.0.0.1:9001").unwrap();
        let b = join_cluster(&driver, "127.0.0.1:9002").unwrap();
        assert_eq!((a, b), (StorageNodeId(1), StorageNodeId(2)));
        assert_eq!(cluster.num_nodes(), 3);
        assert_eq!(membership.len(), 3);
        join.shutdown();
    }
}
