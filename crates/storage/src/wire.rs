//! The storage RPC wire format: hurricane-format varint encoding of
//! [`RequestEnvelope`] and [`ReplyEnvelope`], plus length-prefixed
//! framing for stream transports.
//!
//! The in-process transports move envelopes as Rust values; the TCP
//! transport ([`crate::tcp`]) needs them as bytes. This module is the
//! byte layer, built on the same LEB128 varint primitives as the record
//! format ([`hurricane_format::varint`]) — no serialization framework,
//! every field hand-placed, so the wire layout is an explicit, versioned
//! contract (documented in `WIRE.md` at the repo root).
//!
//! Layout rules:
//!
//! * Integers are unsigned LEB128 varints (u32 fields widen to u64).
//! * `bool` is one byte, `0` or `1`; anything else is
//!   [`CodecError::InvalidTag`].
//! * Enum variants carry a one-byte tag followed by their fields in
//!   declaration order.
//! * Byte strings and collections carry a varint count prefix.
//! * A frame is `varint(payload_len) ++ payload`; payloads longer than
//!   [`MAX_FRAME_LEN`] are rejected on both ends, which bounds the
//!   memory a malformed or hostile peer can make a node allocate.
//!
//! Decoding is *total*: arbitrary bytes either decode or return a
//! [`CodecError`]; nothing panics. Decoders run on exactly one frame's
//! payload, so "declared length exceeds remaining input" is always
//! [`CodecError::Truncated`], never a blocking read.

use crate::error::StorageError;
use crate::node::{BagSample, NodeRemoveBatch, TagSegment};
use crate::rpc::{ChunkRun, ReplyEnvelope, RequestEnvelope, StorageRequest, StorageResponse};
use hurricane_common::{BagId, StorageNodeId};
use hurricane_format::varint;
use hurricane_format::{Chunk, CodecError};

/// Hard ceiling on one frame's payload size (64 MiB + slack).
///
/// The largest legitimate frame is an `InsertBatch` of coalesced 4 MB
/// chunks; default coalescing keeps that well under this cap. A length
/// prefix above the cap is a protocol violation, reported as
/// [`CodecError::LengthOverflow`] before any allocation happens.
pub const MAX_FRAME_LEN: usize = 80 * 1024 * 1024;

// ---------------------------------------------------------------------------
// Primitive field helpers.
// ---------------------------------------------------------------------------

fn put_u64(value: u64, out: &mut Vec<u8>) {
    varint::encode(value, out);
}

fn put_u32(value: u32, out: &mut Vec<u8>) {
    varint::encode(value as u64, out);
}

fn put_bool(value: bool, out: &mut Vec<u8>) {
    out.push(value as u8);
}

fn put_bytes(bytes: &[u8], out: &mut Vec<u8>) {
    varint::encode(bytes.len() as u64, out);
    out.extend_from_slice(bytes);
}

fn get_u64(input: &mut &[u8]) -> Result<u64, CodecError> {
    varint::decode(input)
}

fn get_u32(input: &mut &[u8]) -> Result<u32, CodecError> {
    let v = varint::decode(input)?;
    u32::try_from(v).map_err(|_| CodecError::LengthOverflow)
}

fn get_usize(input: &mut &[u8]) -> Result<usize, CodecError> {
    let v = varint::decode(input)?;
    usize::try_from(v).map_err(|_| CodecError::LengthOverflow)
}

fn get_bool(input: &mut &[u8]) -> Result<bool, CodecError> {
    match get_tag(input)? {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(CodecError::InvalidTag(t)),
    }
}

fn get_tag(input: &mut &[u8]) -> Result<u8, CodecError> {
    let (&byte, rest) = input.split_first().ok_or(CodecError::Truncated)?;
    *input = rest;
    Ok(byte)
}

/// Reads a count prefix for a collection whose elements occupy at least
/// `min_elem` bytes each — the remaining input bounds the count, so a
/// hostile length can never drive a huge allocation.
fn get_count(input: &mut &[u8], min_elem: usize) -> Result<usize, CodecError> {
    let count = get_usize(input)?;
    if count.saturating_mul(min_elem.max(1)) > input.len() {
        return Err(CodecError::Truncated);
    }
    Ok(count)
}

fn get_bytes<'a>(input: &mut &'a [u8]) -> Result<&'a [u8], CodecError> {
    let len = get_count(input, 1)?;
    let (head, rest) = input.split_at(len);
    *input = rest;
    Ok(head)
}

// ---------------------------------------------------------------------------
// Composite fields.
// ---------------------------------------------------------------------------

fn put_chunk(chunk: &Chunk, out: &mut Vec<u8>) {
    put_bytes(chunk.bytes(), out);
}

fn get_chunk(input: &mut &[u8]) -> Result<Chunk, CodecError> {
    Ok(Chunk::from_vec(get_bytes(input)?.to_vec()))
}

fn put_chunks(chunks: &[Chunk], out: &mut Vec<u8>) {
    put_u64(chunks.len() as u64, out);
    for c in chunks {
        put_chunk(c, out);
    }
}

fn get_chunks(input: &mut &[u8]) -> Result<Vec<Chunk>, CodecError> {
    let count = get_count(input, 1)?;
    let mut chunks = Vec::with_capacity(count);
    for _ in 0..count {
        chunks.push(get_chunk(input)?);
    }
    Ok(chunks)
}

fn put_tags(tags: &[TagSegment], out: &mut Vec<u8>) {
    put_u64(tags.len() as u64, out);
    for t in tags {
        put_u64(t.run, out);
        put_u32(t.start, out);
        put_u32(t.len, out);
    }
}

fn get_tags(input: &mut &[u8]) -> Result<Vec<TagSegment>, CodecError> {
    let count = get_count(input, 3)?;
    let mut tags = Vec::with_capacity(count);
    for _ in 0..count {
        tags.push(TagSegment {
            run: get_u64(input)?,
            start: get_u32(input)?,
            len: get_u32(input)?,
        });
    }
    Ok(tags)
}

fn put_bag(bag: BagId, out: &mut Vec<u8>) {
    put_u64(bag.0, out);
}

fn get_bag(input: &mut &[u8]) -> Result<BagId, CodecError> {
    Ok(BagId(get_u64(input)?))
}

fn put_node(node: StorageNodeId, out: &mut Vec<u8>) {
    put_u32(node.0, out);
}

fn get_node(input: &mut &[u8]) -> Result<StorageNodeId, CodecError> {
    Ok(StorageNodeId(get_u32(input)?))
}

fn put_sample(s: &BagSample, out: &mut Vec<u8>) {
    put_u64(s.total_chunks, out);
    put_u64(s.removed_chunks, out);
    put_u64(s.remaining_chunks, out);
    put_u64(s.remaining_bytes, out);
    put_u64(s.total_bytes, out);
    put_u64(s.resident_bytes, out);
    put_bool(s.sealed, out);
}

fn get_sample(input: &mut &[u8]) -> Result<BagSample, CodecError> {
    Ok(BagSample {
        total_chunks: get_u64(input)?,
        removed_chunks: get_u64(input)?,
        remaining_chunks: get_u64(input)?,
        remaining_bytes: get_u64(input)?,
        total_bytes: get_u64(input)?,
        resident_bytes: get_u64(input)?,
        sealed: get_bool(input)?,
    })
}

fn put_remove_batch(b: &NodeRemoveBatch, out: &mut Vec<u8>) {
    put_chunks(&b.chunks, out);
    put_tags(&b.tags, out);
    put_bool(b.exhausted, out);
    put_bool(b.eof, out);
}

fn get_remove_batch(input: &mut &[u8]) -> Result<NodeRemoveBatch, CodecError> {
    Ok(NodeRemoveBatch {
        chunks: get_chunks(input)?,
        tags: get_tags(input)?,
        exhausted: get_bool(input)?,
        eof: get_bool(input)?,
    })
}

// ---------------------------------------------------------------------------
// StorageRequest.
// ---------------------------------------------------------------------------

const REQ_INSERT_BATCH: u8 = 0;
const REQ_REMOVE_BATCH: u8 = 1;
const REQ_MIRROR_CONSUMED: u8 = 2;
const REQ_SAMPLE: u8 = 3;
const REQ_READ_AT: u8 = 4;
const REQ_SNAPSHOT: u8 = 5;
const REQ_SNAPSHOT_FROM: u8 = 6;
const REQ_SEAL: u8 = 7;
const REQ_REWIND: u8 = 8;
const REQ_DISCARD: u8 = 9;
const REQ_COLLECT: u8 = 10;
const REQ_DRAIN: u8 = 11;
const REQ_IS_DRAINED: u8 = 12;
const REQ_PING: u8 = 13;
const REQ_CLAIM_CONSUMED: u8 = 14;

fn put_request_body(req: &StorageRequest, out: &mut Vec<u8>) {
    match req {
        StorageRequest::InsertBatch {
            bag,
            origin,
            run,
            chunks,
        } => {
            out.push(REQ_INSERT_BATCH);
            put_bag(*bag, out);
            put_u32(*origin, out);
            put_u64(*run, out);
            put_chunks(chunks, out);
        }
        StorageRequest::RemoveBatch { bag, origin, max_n } => {
            out.push(REQ_REMOVE_BATCH);
            put_bag(*bag, out);
            put_u32(*origin, out);
            put_u64(*max_n as u64, out);
        }
        StorageRequest::MirrorConsumed { bag, origin, tags } => {
            out.push(REQ_MIRROR_CONSUMED);
            put_bag(*bag, out);
            put_u32(*origin, out);
            put_tags(tags, out);
        }
        StorageRequest::Sample { bag } => {
            out.push(REQ_SAMPLE);
            put_bag(*bag, out);
        }
        StorageRequest::ReadAt { bag, index } => {
            out.push(REQ_READ_AT);
            put_bag(*bag, out);
            put_u64(*index as u64, out);
        }
        StorageRequest::Snapshot { bag } => {
            out.push(REQ_SNAPSHOT);
            put_bag(*bag, out);
        }
        StorageRequest::SnapshotFrom { bag, origin } => {
            out.push(REQ_SNAPSHOT_FROM);
            put_bag(*bag, out);
            put_u32(*origin, out);
        }
        StorageRequest::Seal { bag } => {
            out.push(REQ_SEAL);
            put_bag(*bag, out);
        }
        StorageRequest::Rewind { bag } => {
            out.push(REQ_REWIND);
            put_bag(*bag, out);
        }
        StorageRequest::Discard { bag } => {
            out.push(REQ_DISCARD);
            put_bag(*bag, out);
        }
        StorageRequest::Collect { bag } => {
            out.push(REQ_COLLECT);
            put_bag(*bag, out);
        }
        StorageRequest::Drain => out.push(REQ_DRAIN),
        StorageRequest::IsDrained => out.push(REQ_IS_DRAINED),
        StorageRequest::Ping => out.push(REQ_PING),
        StorageRequest::ClaimConsumed { bag, origin, tags } => {
            out.push(REQ_CLAIM_CONSUMED);
            put_bag(*bag, out);
            put_u32(*origin, out);
            put_tags(tags, out);
        }
    }
}

fn get_request_body(input: &mut &[u8]) -> Result<StorageRequest, CodecError> {
    Ok(match get_tag(input)? {
        REQ_INSERT_BATCH => StorageRequest::InsertBatch {
            bag: get_bag(input)?,
            origin: get_u32(input)?,
            run: get_u64(input)?,
            chunks: ChunkRun::new(get_chunks(input)?),
        },
        REQ_REMOVE_BATCH => StorageRequest::RemoveBatch {
            bag: get_bag(input)?,
            origin: get_u32(input)?,
            max_n: get_usize(input)?,
        },
        REQ_MIRROR_CONSUMED => StorageRequest::MirrorConsumed {
            bag: get_bag(input)?,
            origin: get_u32(input)?,
            tags: get_tags(input)?,
        },
        REQ_SAMPLE => StorageRequest::Sample {
            bag: get_bag(input)?,
        },
        REQ_READ_AT => StorageRequest::ReadAt {
            bag: get_bag(input)?,
            index: get_usize(input)?,
        },
        REQ_SNAPSHOT => StorageRequest::Snapshot {
            bag: get_bag(input)?,
        },
        REQ_SNAPSHOT_FROM => StorageRequest::SnapshotFrom {
            bag: get_bag(input)?,
            origin: get_u32(input)?,
        },
        REQ_SEAL => StorageRequest::Seal {
            bag: get_bag(input)?,
        },
        REQ_REWIND => StorageRequest::Rewind {
            bag: get_bag(input)?,
        },
        REQ_DISCARD => StorageRequest::Discard {
            bag: get_bag(input)?,
        },
        REQ_COLLECT => StorageRequest::Collect {
            bag: get_bag(input)?,
        },
        REQ_DRAIN => StorageRequest::Drain,
        REQ_IS_DRAINED => StorageRequest::IsDrained,
        REQ_PING => StorageRequest::Ping,
        REQ_CLAIM_CONSUMED => StorageRequest::ClaimConsumed {
            bag: get_bag(input)?,
            origin: get_u32(input)?,
            tags: get_tags(input)?,
        },
        t => return Err(CodecError::InvalidTag(t)),
    })
}

// ---------------------------------------------------------------------------
// StorageResponse.
// ---------------------------------------------------------------------------

const RESP_INSERTED: u8 = 0;
const RESP_REMOVED: u8 = 1;
const RESP_MIRRORED: u8 = 2;
const RESP_SAMPLED: u8 = 3;
const RESP_CHUNK_AT: u8 = 4;
const RESP_CHUNKS: u8 = 5;
const RESP_DONE: u8 = 6;
const RESP_DRAINED: u8 = 7;
const RESP_PONG: u8 = 8;
const RESP_CLAIMED: u8 = 9;

fn put_response(resp: &StorageResponse, out: &mut Vec<u8>) {
    match resp {
        StorageResponse::Inserted => out.push(RESP_INSERTED),
        StorageResponse::Removed(batch) => {
            out.push(RESP_REMOVED);
            put_remove_batch(batch, out);
        }
        StorageResponse::Mirrored => out.push(RESP_MIRRORED),
        StorageResponse::Sampled(sample) => {
            out.push(RESP_SAMPLED);
            put_sample(sample, out);
        }
        StorageResponse::ChunkAt(opt) => {
            out.push(RESP_CHUNK_AT);
            match opt {
                None => put_bool(false, out),
                Some(chunk) => {
                    put_bool(true, out);
                    put_chunk(chunk, out);
                }
            }
        }
        StorageResponse::Chunks(chunks) => {
            out.push(RESP_CHUNKS);
            put_chunks(chunks, out);
        }
        StorageResponse::Done => out.push(RESP_DONE),
        StorageResponse::Drained(flag) => {
            out.push(RESP_DRAINED);
            put_bool(*flag, out);
        }
        StorageResponse::Pong => out.push(RESP_PONG),
        StorageResponse::Claimed(tags) => {
            out.push(RESP_CLAIMED);
            put_tags(tags, out);
        }
    }
}

fn get_response(input: &mut &[u8]) -> Result<StorageResponse, CodecError> {
    Ok(match get_tag(input)? {
        RESP_INSERTED => StorageResponse::Inserted,
        RESP_REMOVED => StorageResponse::Removed(get_remove_batch(input)?),
        RESP_MIRRORED => StorageResponse::Mirrored,
        RESP_SAMPLED => StorageResponse::Sampled(get_sample(input)?),
        RESP_CHUNK_AT => StorageResponse::ChunkAt(if get_bool(input)? {
            Some(get_chunk(input)?)
        } else {
            None
        }),
        RESP_CHUNKS => StorageResponse::Chunks(get_chunks(input)?),
        RESP_DONE => StorageResponse::Done,
        RESP_DRAINED => StorageResponse::Drained(get_bool(input)?),
        RESP_PONG => StorageResponse::Pong,
        RESP_CLAIMED => StorageResponse::Claimed(get_tags(input)?),
        t => return Err(CodecError::InvalidTag(t)),
    })
}

// ---------------------------------------------------------------------------
// StorageError and CodecError.
// ---------------------------------------------------------------------------

const ERR_NODE_DOWN: u8 = 0;
const ERR_NODE_DRAINING: u8 = 1;
const ERR_BAG_SEALED: u8 = 2;
const ERR_UNKNOWN_BAG: u8 = 3;
const ERR_BAG_COLLECTED: u8 = 4;
const ERR_ALL_REPLICAS_DOWN: u8 = 5;
const ERR_DISCONNECTED: u8 = 6;
const ERR_TIMEOUT: u8 = 7;
const ERR_PREFETCH_ABORTED: u8 = 8;
const ERR_CODEC: u8 = 9;
const ERR_DISK_FULL: u8 = 10;
const ERR_DISK_IO: u8 = 11;

const CODEC_TRUNCATED: u8 = 0;
const CODEC_INVALID_VARINT: u8 = 1;
const CODEC_INVALID_UTF8: u8 = 2;
const CODEC_INVALID_TAG: u8 = 3;
const CODEC_RECORD_TOO_LARGE: u8 = 4;
const CODEC_LENGTH_OVERFLOW: u8 = 5;

fn put_error(err: &StorageError, out: &mut Vec<u8>) {
    match err {
        StorageError::NodeDown(n) => {
            out.push(ERR_NODE_DOWN);
            put_node(*n, out);
        }
        StorageError::NodeDraining(n) => {
            out.push(ERR_NODE_DRAINING);
            put_node(*n, out);
        }
        StorageError::BagSealed(b) => {
            out.push(ERR_BAG_SEALED);
            put_bag(*b, out);
        }
        StorageError::UnknownBag(b) => {
            out.push(ERR_UNKNOWN_BAG);
            put_bag(*b, out);
        }
        StorageError::BagCollected(b) => {
            out.push(ERR_BAG_COLLECTED);
            put_bag(*b, out);
        }
        StorageError::AllReplicasDown(b) => {
            out.push(ERR_ALL_REPLICAS_DOWN);
            put_bag(*b, out);
        }
        StorageError::Disconnected(n) => {
            out.push(ERR_DISCONNECTED);
            put_node(*n, out);
        }
        StorageError::Timeout(n) => {
            out.push(ERR_TIMEOUT);
            put_node(*n, out);
        }
        StorageError::PrefetchAborted => out.push(ERR_PREFETCH_ABORTED),
        StorageError::Codec(c) => {
            out.push(ERR_CODEC);
            match c {
                CodecError::Truncated => out.push(CODEC_TRUNCATED),
                CodecError::InvalidVarint => out.push(CODEC_INVALID_VARINT),
                CodecError::InvalidUtf8 => out.push(CODEC_INVALID_UTF8),
                CodecError::InvalidTag(t) => {
                    out.push(CODEC_INVALID_TAG);
                    out.push(*t);
                }
                CodecError::RecordTooLarge { record, chunk } => {
                    out.push(CODEC_RECORD_TOO_LARGE);
                    put_u64(*record as u64, out);
                    put_u64(*chunk as u64, out);
                }
                CodecError::LengthOverflow => out.push(CODEC_LENGTH_OVERFLOW),
            }
        }
        StorageError::DiskFull(n) => {
            out.push(ERR_DISK_FULL);
            put_node(*n, out);
        }
        StorageError::DiskIo(n) => {
            out.push(ERR_DISK_IO);
            put_node(*n, out);
        }
    }
}

fn get_error(input: &mut &[u8]) -> Result<StorageError, CodecError> {
    Ok(match get_tag(input)? {
        ERR_NODE_DOWN => StorageError::NodeDown(get_node(input)?),
        ERR_NODE_DRAINING => StorageError::NodeDraining(get_node(input)?),
        ERR_BAG_SEALED => StorageError::BagSealed(get_bag(input)?),
        ERR_UNKNOWN_BAG => StorageError::UnknownBag(get_bag(input)?),
        ERR_BAG_COLLECTED => StorageError::BagCollected(get_bag(input)?),
        ERR_ALL_REPLICAS_DOWN => StorageError::AllReplicasDown(get_bag(input)?),
        ERR_DISCONNECTED => StorageError::Disconnected(get_node(input)?),
        ERR_TIMEOUT => StorageError::Timeout(get_node(input)?),
        ERR_PREFETCH_ABORTED => StorageError::PrefetchAborted,
        ERR_CODEC => StorageError::Codec(match get_tag(input)? {
            CODEC_TRUNCATED => CodecError::Truncated,
            CODEC_INVALID_VARINT => CodecError::InvalidVarint,
            CODEC_INVALID_UTF8 => CodecError::InvalidUtf8,
            CODEC_INVALID_TAG => CodecError::InvalidTag(get_tag(input)?),
            CODEC_RECORD_TOO_LARGE => CodecError::RecordTooLarge {
                record: get_usize(input)?,
                chunk: get_usize(input)?,
            },
            CODEC_LENGTH_OVERFLOW => CodecError::LengthOverflow,
            t => return Err(CodecError::InvalidTag(t)),
        }),
        ERR_DISK_FULL => StorageError::DiskFull(get_node(input)?),
        ERR_DISK_IO => StorageError::DiskIo(get_node(input)?),
        t => return Err(CodecError::InvalidTag(t)),
    })
}

// ---------------------------------------------------------------------------
// Envelopes.
// ---------------------------------------------------------------------------

/// Appends the wire encoding of a request envelope (payload only, no
/// frame header) to `out`.
pub fn encode_request(env: &RequestEnvelope, out: &mut Vec<u8>) {
    put_u64(env.id, out);
    put_u64(env.client, out);
    put_u64(env.seq, out);
    put_request_body(&env.request, out);
}

/// Decodes a request envelope from the front of `input`, advancing it.
/// Callers decoding a whole frame should verify `input` is empty after.
pub fn decode_request(input: &mut &[u8]) -> Result<RequestEnvelope, CodecError> {
    Ok(RequestEnvelope {
        id: get_u64(input)?,
        client: get_u64(input)?,
        seq: get_u64(input)?,
        request: get_request_body(input)?,
    })
}

/// Appends the wire encoding of a reply envelope (payload only, no frame
/// header) to `out`.
pub fn encode_reply(env: &ReplyEnvelope, out: &mut Vec<u8>) {
    put_u64(env.id, out);
    match &env.result {
        Ok(resp) => {
            put_bool(true, out);
            put_response(resp, out);
        }
        Err(err) => {
            put_bool(false, out);
            put_error(err, out);
        }
    }
}

/// Decodes a reply envelope from the front of `input`, advancing it.
pub fn decode_reply(input: &mut &[u8]) -> Result<ReplyEnvelope, CodecError> {
    let id = get_u64(input)?;
    let result = if get_bool(input)? {
        Ok(get_response(input)?)
    } else {
        Err(get_error(input)?)
    };
    Ok(ReplyEnvelope { id, result })
}

// ---------------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------------

/// Appends one frame — `varint(payload.len()) ++ payload` — to `out`.
///
/// Panics if `payload` exceeds [`MAX_FRAME_LEN`]; local encoders never
/// produce such a payload (insert coalescing bounds batch size), so an
/// oversized frame is a programming error, not a runtime condition.
pub fn frame(payload: &[u8], out: &mut Vec<u8>) {
    assert!(
        payload.len() <= MAX_FRAME_LEN,
        "frame payload {} exceeds MAX_FRAME_LEN",
        payload.len()
    );
    varint::encode(payload.len() as u64, out);
    out.extend_from_slice(payload);
}

/// Incremental frame reassembly for a byte stream.
///
/// Feed arbitrary slices (however the socket delivered them) with
/// [`FrameBuffer::push`]; pull complete frame payloads with
/// [`FrameBuffer::next_frame`]. Frames split across pushes, or several
/// frames coalesced into one push, reassemble identically. A malformed
/// length prefix or one above [`MAX_FRAME_LEN`] is a fatal protocol
/// error — the connection carrying it must be dropped, since frame
/// boundaries can no longer be trusted.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily so each byte is moved
    /// at most a constant number of times.
    start: usize,
}

impl FrameBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Extracts the next complete frame payload, if one is buffered.
    ///
    /// `Ok(None)` means "need more bytes". An error means the stream is
    /// unrecoverable: an invalid or oversized length prefix.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, CodecError> {
        let avail = &self.buf[self.start..];
        let mut cursor = avail;
        let len = match varint::decode(&mut cursor) {
            Ok(len) => len,
            // Fewer than MAX_VARINT_LEN bytes buffered and no terminator
            // yet: the prefix may still complete. (A full-length prefix
            // with no terminator already decodes to InvalidVarint.)
            Err(CodecError::Truncated) => return Ok(None),
            Err(e) => return Err(e),
        };
        if len > MAX_FRAME_LEN as u64 {
            return Err(CodecError::LengthOverflow);
        }
        let len = len as usize;
        if cursor.len() < len {
            return Ok(None);
        }
        let header = avail.len() - cursor.len();
        let frame = avail[header..header + len].to_vec();
        self.start += header + len;
        // Compact once the dead prefix dominates the buffer.
        if self.start >= 64 * 1024 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> RequestEnvelope {
        RequestEnvelope {
            id: 7,
            client: 99,
            seq: 3,
            request: StorageRequest::InsertBatch {
                bag: BagId(4),
                origin: 2,
                run: 11,
                chunks: ChunkRun::new(vec![
                    Chunk::from_vec(vec![1, 2, 3]),
                    Chunk::from_vec(Vec::new()),
                ]),
            },
        }
    }

    #[test]
    fn request_roundtrips() {
        let env = sample_request();
        let mut buf = Vec::new();
        encode_request(&env, &mut buf);
        let mut slice = buf.as_slice();
        let back = decode_request(&mut slice).unwrap();
        assert!(slice.is_empty(), "decode must consume the whole payload");
        assert_eq!(back, env);
    }

    #[test]
    fn reply_roundtrips_ok_and_err() {
        for result in [
            Ok(StorageResponse::Removed(NodeRemoveBatch {
                chunks: vec![Chunk::from_vec(vec![9])],
                tags: vec![TagSegment {
                    run: 5,
                    start: 0,
                    len: 1,
                }],
                exhausted: true,
                eof: false,
            })),
            Ok(StorageResponse::ChunkAt(None)),
            Err(StorageError::NodeDraining(StorageNodeId(3))),
            Err(StorageError::Codec(CodecError::RecordTooLarge {
                record: 10,
                chunk: 4,
            })),
            Err(StorageError::DiskFull(StorageNodeId(7))),
            Err(StorageError::DiskIo(StorageNodeId(1))),
        ] {
            let env = ReplyEnvelope { id: 42, result };
            let mut buf = Vec::new();
            encode_reply(&env, &mut buf);
            let mut slice = buf.as_slice();
            let back = decode_reply(&mut slice).unwrap();
            assert!(slice.is_empty());
            assert_eq!(back, env);
        }
    }

    #[test]
    fn truncated_payload_errors_not_panics() {
        let mut buf = Vec::new();
        encode_request(&sample_request(), &mut buf);
        for cut in 0..buf.len() {
            let mut slice = &buf[..cut];
            assert!(
                decode_request(&mut slice).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic() {
        // A deterministic junk stream; totality is the property.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let junk: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        for start in 0..64 {
            let mut slice = &junk[start..];
            let _ = decode_request(&mut slice);
            let mut slice = &junk[start..];
            let _ = decode_reply(&mut slice);
        }
    }

    #[test]
    fn hostile_count_is_rejected_before_allocation() {
        // InsertBatch claiming u64::MAX chunks in a 20-byte payload.
        let mut buf = Vec::new();
        put_u64(1, &mut buf); // id
        put_u64(1, &mut buf); // client
        put_u64(1, &mut buf); // seq
        buf.push(REQ_INSERT_BATCH);
        put_u64(4, &mut buf); // bag
        put_u32(0, &mut buf); // origin
        put_u64(9, &mut buf); // run
        put_u64(u64::MAX, &mut buf); // chunk count
        let mut slice = buf.as_slice();
        assert!(decode_request(&mut slice).is_err());
    }

    #[test]
    fn frames_reassemble_across_splits() {
        let mut payload_a = Vec::new();
        encode_request(&sample_request(), &mut payload_a);
        let payload_b = vec![0xAB; 300];
        let mut stream = Vec::new();
        frame(&payload_a, &mut stream);
        frame(&payload_b, &mut stream);
        // Byte-at-a-time delivery.
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        for b in &stream {
            fb.push(std::slice::from_ref(b));
            while let Some(f) = fb.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, vec![payload_a.clone(), payload_b.clone()]);
        assert_eq!(fb.pending(), 0);
        // Whole-stream delivery.
        let mut fb = FrameBuffer::new();
        fb.push(&stream);
        assert_eq!(fb.next_frame().unwrap().unwrap(), payload_a);
        assert_eq!(fb.next_frame().unwrap().unwrap(), payload_b);
        assert_eq!(fb.next_frame().unwrap(), None);
    }

    #[test]
    fn oversized_frame_is_fatal() {
        let mut fb = FrameBuffer::new();
        let mut header = Vec::new();
        varint::encode(MAX_FRAME_LEN as u64 + 1, &mut header);
        fb.push(&header);
        assert_eq!(fb.next_frame(), Err(CodecError::LengthOverflow));
    }

    #[test]
    fn malformed_length_prefix_is_fatal() {
        let mut fb = FrameBuffer::new();
        fb.push(&[0x80; 11]);
        assert_eq!(fb.next_frame(), Err(CodecError::InvalidVarint));
    }

    #[test]
    fn incomplete_frame_waits_for_more() {
        let mut fb = FrameBuffer::new();
        let mut stream = Vec::new();
        frame(&[1, 2, 3, 4], &mut stream);
        fb.push(&stream[..3]);
        assert_eq!(fb.next_frame().unwrap(), None);
        fb.push(&stream[3..]);
        assert_eq!(fb.next_frame().unwrap().unwrap(), vec![1, 2, 3, 4]);
    }
}
