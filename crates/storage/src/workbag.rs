//! Work bags: bags of task descriptors (paper §4.1).
//!
//! "Work bags are similar to data bags and expose the same interface,
//! except they contain tasks, not chunks." Each application keeps three:
//! *ready* (tasks available for any compute node to claim), *running*
//! (tasks currently executing, scanned on compute-node failure), and
//! *done* (completed task ids, replayed on master recovery).
//!
//! Each item is encoded as a single-record chunk, making the chunk's
//! exactly-once removal guarantee an exactly-once *task claim* guarantee:
//! two task managers pulling from the ready bag can never start the same
//! task instance twice.

use crate::bag::{BagClient, BatchRemoveResult, RemoveResult};
use crate::cluster::StorageCluster;
use crate::error::StorageError;
use hurricane_common::BagId;
use hurricane_format::{decode_all, Chunk, Record};
use std::marker::PhantomData;
use std::sync::Arc;

/// A typed bag of items, one record per chunk.
pub struct WorkBag<T: Record> {
    client: BagClient,
    _marker: PhantomData<fn(&T)>,
}

impl<T: Record> WorkBag<T> {
    /// Wraps bag `bag` on `cluster` as a typed work bag.
    pub fn new(cluster: Arc<StorageCluster>, bag: BagId, seed: u64) -> Self {
        Self::with_client(BagClient::new(cluster, bag, seed))
    }

    /// Wraps an existing bag client (e.g. one minted over the RPC
    /// boundary via [`crate::StorageEndpoint::client`]) as a typed work
    /// bag.
    pub fn with_client(client: BagClient) -> Self {
        Self {
            client,
            _marker: PhantomData,
        }
    }

    /// The underlying bag id.
    pub fn bag_id(&self) -> BagId {
        self.client.bag_id()
    }

    /// Inserts one item.
    pub fn insert(&mut self, item: &T) -> Result<(), StorageError> {
        let mut buf = Vec::with_capacity(item.encoded_len());
        item.encode(&mut buf);
        self.client.insert(Chunk::from_vec(buf))
    }

    /// Inserts many items with batched storage calls — one placement
    /// pass and at most one storage round-trip per node for the whole
    /// run, instead of one per item.
    pub fn insert_batch(&mut self, items: &[T]) -> Result<(), StorageError> {
        let chunks: Vec<Chunk> = items
            .iter()
            .map(|item| {
                let mut buf = Vec::with_capacity(item.encoded_len());
                item.encode(&mut buf);
                Chunk::from_vec(buf)
            })
            .collect();
        self.client.insert_batch(&chunks)
    }

    /// Attempts to claim one item. `Ok(None)` means nothing is available
    /// *right now*; work bags are long-lived, so unlike data bags the
    /// common idle case is "empty but more tasks will arrive".
    pub fn try_take(&mut self) -> Result<Option<T>, StorageError> {
        match self.client.try_remove()? {
            RemoveResult::Chunk(c) => {
                let mut bytes = c.bytes();
                Ok(Some(T::decode(&mut bytes).map_err(StorageError::from)?))
            }
            RemoveResult::Pending | RemoveResult::Drained => Ok(None),
        }
    }

    /// Claims up to `max_n` items in one batched storage pass. `Ok` with
    /// an empty vector means nothing is available right now. Each claimed
    /// item carries the same exactly-once guarantee as [`WorkBag::try_take`].
    pub fn try_take_batch(&mut self, max_n: usize) -> Result<Vec<T>, StorageError> {
        match self.client.try_remove_batch(max_n)? {
            BatchRemoveResult::Chunks(chunks) => {
                let mut items = Vec::with_capacity(chunks.len());
                for c in &chunks {
                    let mut bytes = c.bytes();
                    items.push(T::decode(&mut bytes).map_err(StorageError::from)?);
                }
                Ok(items)
            }
            BatchRemoveResult::Pending | BatchRemoveResult::Drained => Ok(Vec::new()),
        }
    }

    /// Non-destructively reads every item ever inserted — including items
    /// already claimed. This is the scan the master uses to replay the
    /// done bag after a crash and to find a failed node's running tasks
    /// (paper §4.4).
    pub fn scan_all(&self) -> Result<Vec<T>, StorageError> {
        let chunks = self.client.cluster().snapshot_bag(self.bag_id())?;
        let mut items = Vec::with_capacity(chunks.len());
        for c in &chunks {
            items.extend(decode_all::<T>(c).map_err(StorageError::from)?);
        }
        Ok(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use std::collections::HashSet;

    type Descriptor = (u64, String);

    fn setup() -> (Arc<StorageCluster>, BagId) {
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let bag = cluster.create_bag();
        (cluster, bag)
    }

    #[test]
    fn insert_take_roundtrip() {
        let (cluster, bag) = setup();
        let mut wb = WorkBag::<Descriptor>::new(cluster, bag, 1);
        wb.insert(&(7, "phase1".into())).unwrap();
        let item = wb.try_take().unwrap().unwrap();
        assert_eq!(item, (7, "phase1".into()));
        assert_eq!(wb.try_take().unwrap(), None);
    }

    #[test]
    fn claims_are_exactly_once_across_managers() {
        let (cluster, bag) = setup();
        let mut producer = WorkBag::<(u64, u64)>::new(cluster.clone(), bag, 2);
        for i in 0..64 {
            producer.insert(&(i, i * 10)).unwrap();
        }
        let mut claimed = HashSet::new();
        let mut a = WorkBag::<(u64, u64)>::new(cluster.clone(), bag, 3);
        let mut b = WorkBag::<(u64, u64)>::new(cluster.clone(), bag, 4);
        loop {
            let mut progressed = false;
            if let Some(t) = a.try_take().unwrap() {
                assert!(claimed.insert(t.0), "double claim {t:?}");
                progressed = true;
            }
            if let Some(t) = b.try_take().unwrap() {
                assert!(claimed.insert(t.0), "double claim {t:?}");
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        assert_eq!(claimed.len(), 64);
    }

    #[test]
    fn scan_sees_claimed_items() {
        let (cluster, bag) = setup();
        let mut wb = WorkBag::<u64>::new(cluster, bag, 5);
        for i in 0..10 {
            wb.insert(&i).unwrap();
        }
        for _ in 0..5 {
            wb.try_take().unwrap().unwrap();
        }
        // The done-bag replay semantics: claimed or not, history is intact.
        let all = wb.scan_all().unwrap();
        let set: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn batch_insert_and_take_roundtrip() {
        let (cluster, bag) = setup();
        let mut wb = WorkBag::<u64>::new(cluster.clone(), bag, 7);
        let items: Vec<u64> = (0..50).collect();
        wb.insert_batch(&items).unwrap();
        let mut got = Vec::new();
        loop {
            let batch = wb.try_take_batch(16).unwrap();
            if batch.is_empty() {
                break;
            }
            got.extend(batch);
        }
        got.sort_unstable();
        assert_eq!(got, items, "every item claimed exactly once");
    }

    #[test]
    fn items_survive_and_spread_across_nodes() {
        let (cluster, bag) = setup();
        let mut wb = WorkBag::<u64>::new(cluster.clone(), bag, 6);
        for i in 0..40 {
            wb.insert(&i).unwrap();
        }
        // Work bag items are spread like data chunks (decentralized
        // scheduling; no single point of control, paper §4.1).
        for idx in 0..4 {
            assert_eq!(cluster.node(idx).sample(bag).unwrap().total_chunks, 10);
        }
    }
}
