//! Disk-backed durability integration tests (`SEGMENT.md`): a storage
//! node restarted from its segment-log directory recovers bag contents,
//! counters, consumed pointers, and lifecycle state; a spill threshold
//! below the data volume bounds resident memory while the whole volume
//! still round-trips byte-exactly through the logs.

use hurricane_common::{BagId, StorageNodeId};
use hurricane_format::Chunk;
use hurricane_storage::{SegmentStore, StorageNode, TagSegment};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// A fresh per-test temp dir, removed on drop so reruns start clean.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "hurricane-durability-{}-{}",
            std::process::id(),
            name
        ));
        std::fs::remove_dir_all(&path).ok();
        Self(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn chunk(v: u64) -> Chunk {
    Chunk::from_vec(v.to_le_bytes().to_vec())
}

fn value(c: &Chunk) -> u64 {
    u64::from_le_bytes(c.bytes()[..8].try_into().expect("test chunk"))
}

fn open(dir: &TempDir) -> StorageNode {
    let store = SegmentStore::disk(&dir.0).expect("open segment store");
    StorageNode::durable(StorageNodeId(0), store, u64::MAX).expect("recover node")
}

/// Drains `bag` to eof through the batch path, returning every value.
fn drain(node: &StorageNode, bag: BagId) -> Vec<u64> {
    let mut out = Vec::new();
    loop {
        let batch = node.remove_batch(bag, 8).expect("remove batch");
        out.extend(batch.chunks.iter().map(value));
        if batch.eof {
            return out;
        }
        assert!(
            !batch.chunks.is_empty() || batch.exhausted,
            "non-eof batch made no progress"
        );
        if batch.exhausted {
            // Exhausted but unsealed would spin forever — the tests seal
            // before draining.
            panic!("exhausted without eof on a sealed bag");
        }
    }
}

#[test]
fn restart_from_disk_recovers_contents_counters_and_pointer() {
    let dir = TempDir::new("roundtrip");
    let bag = BagId(7);
    const N: u64 = 40;
    const CONSUMED: usize = 15;

    let mut before = Vec::new();
    {
        let node = open(&dir);
        for v in 0..N {
            // Own-origin stream: the one `remove_batch` serves and the
            // sample counters track (mirrored streams are covered by
            // the node's unit tests).
            node.insert(bag, chunk(v)).unwrap();
        }
        for _ in 0..CONSUMED {
            let batch = node.remove_batch(bag, 1).expect("consume");
            assert_eq!(batch.chunks.len(), 1, "unsealed bag served short");
            before.push(value(&batch.chunks[0]));
        }
        node.seal(bag).unwrap();
        node.sync_all().unwrap();
        // Dropped without any shutdown beyond the fsync: everything the
        // restart sees comes off the on-disk logs.
    }

    let node = open(&dir);
    let s = node.sample(bag).expect("recovered sample");
    assert_eq!(s.total_chunks, N);
    assert_eq!(s.removed_chunks, CONSUMED as u64);
    assert_eq!(s.remaining_chunks, N - CONSUMED as u64);
    assert_eq!(s.total_bytes, N * 8);
    assert!(s.sealed, "seal lost across restart");
    assert_eq!(s.resident_bytes, 0, "recovered chunks must start spilled");

    // The consumed pointer survived: the drain returns exactly the
    // values not removed before the restart, each exactly once.
    let mut after = drain(&node, bag);
    after.sort_unstable();
    let mut expect: Vec<u64> = (0..N).filter(|v| !before.contains(v)).collect();
    expect.sort_unstable();
    assert_eq!(after, expect, "recovered pointer re-served or lost chunks");
}

#[test]
fn rewind_and_discard_survive_disk_restart() {
    let dir = TempDir::new("lifecycle");
    let rewound = BagId(1);
    let dropped = BagId(2);

    {
        let node = open(&dir);
        for v in 0..10u64 {
            node.insert(rewound, chunk(v)).unwrap();
            node.insert(dropped, chunk(100 + v)).unwrap();
        }
        // Consume over half, then rewind: the pointer reset must be the
        // durable fact, not the consumes that preceded it.
        for _ in 0..6 {
            node.remove(rewound).unwrap();
        }
        node.rewind(rewound).unwrap();
        node.seal(rewound).unwrap();
        node.discard(dropped).unwrap();
        node.sync_all().unwrap();
    }

    let node = open(&dir);
    let mut got = drain(&node, rewound);
    got.sort_unstable();
    assert_eq!(got, (0..10).collect::<Vec<_>>(), "rewind lost on restart");

    let s = node.sample(dropped).expect("discarded bag sample");
    assert_eq!(s.total_chunks, 0, "discard lost on restart");
    assert_eq!(s.total_bytes, 0);
}

#[test]
fn claimed_identities_survive_restart_and_consume_late_inserts() {
    let dir = TempDir::new("claim");
    let bag = BagId(9);
    let run = 777;
    let seg = TagSegment {
        run,
        start: 0,
        len: 1,
    };

    {
        let node = open(&dir);
        // Claim an identity this log has never recorded: another replica
        // served the chunk and the reader reconciled here before
        // delivering, while this node's replicated copy was in flight.
        let already = node.claim_consumed(bag, 0, &[seg]).unwrap();
        assert!(already.is_empty(), "unknown identity echoed as served");
        node.sync_all().unwrap();
        // Crash before the insert lands.
    }

    let node = open(&dir);
    // The replicated insert finally arrives after the restart: the
    // recovered claim must still swallow it, or the chunk would be
    // delivered a second time.
    node.insert_run(bag, &[chunk(1)], 0, run).unwrap();
    let s = node.sample(bag).unwrap();
    assert_eq!(
        (s.total_chunks, s.removed_chunks),
        (1, 1),
        "claim forgotten across restart"
    );
    assert_eq!(s.remaining_bytes, 0);
    node.seal(bag).unwrap();
    let batch = node.remove_batch(bag, 8).expect("drain");
    assert!(
        batch.chunks.is_empty() && batch.eof,
        "claimed chunk re-served after restart"
    );
}

#[test]
fn spill_threshold_bounds_resident_memory_through_a_full_run() {
    let dir = TempDir::new("spill");
    const THRESHOLD: u64 = 64 * 1024;
    const CHUNK: usize = 4 * 1024;
    const N: usize = 512; // 2 MB total, 32x the resident budget.

    let store = SegmentStore::disk(&dir.0).expect("open segment store");
    let node = StorageNode::durable(StorageNodeId(0), store, THRESHOLD).expect("node");
    let bag = BagId(3);

    let mut payloads = BTreeMap::new();
    for i in 0..N {
        let mut body = vec![0u8; CHUNK];
        body[..8].copy_from_slice(&(i as u64).to_le_bytes());
        body[8..16].copy_from_slice(&(!(i as u64)).to_le_bytes());
        payloads.insert(i as u64, body.clone());
        node.insert(bag, Chunk::from_vec(body)).unwrap();
        assert!(
            node.resident_bytes() <= THRESHOLD + CHUNK as u64,
            "resident {} exceeds threshold {} after insert {}",
            node.resident_bytes(),
            THRESHOLD,
            i
        );
    }
    let s = node.sample(bag).unwrap();
    assert_eq!(s.total_bytes, (N * CHUNK) as u64, "spilled bytes uncounted");
    assert!(s.resident_bytes <= THRESHOLD + CHUNK as u64);

    // Drain everything back: every chunk re-read from the log must be
    // byte-exact, and serving from disk must not re-inflate residency.
    node.seal(bag).unwrap();
    let mut seen = 0;
    loop {
        let batch = node.remove_batch(bag, 8).expect("remove");
        for c in &batch.chunks {
            let id = u64::from_le_bytes(c.bytes()[..8].try_into().unwrap());
            let expect = payloads
                .remove(&id)
                .expect("chunk served twice or invented");
            assert_eq!(c.bytes(), &expect[..], "spilled chunk corrupted");
            seen += 1;
        }
        assert!(
            node.resident_bytes() <= THRESHOLD + CHUNK as u64,
            "drain re-inflated residency to {}",
            node.resident_bytes()
        );
        if batch.eof {
            break;
        }
    }
    assert_eq!(seen, N, "drain lost chunks");
    assert!(payloads.is_empty());
}
