//! Property tests for the segment frame codec (`SEGMENT.md`): whatever
//! sequence of records is written and wherever a torn write cuts the
//! log, the recovery scan returns exactly the intact frame prefix —
//! every preceding frame byte-for-byte, only the tail dropped, never a
//! phantom record.

use hurricane_storage::node::TagSegment;
use hurricane_storage::segment::{
    consume_frame, data_frame, decode_data_frame, rewind_frame, scan, Record, ScannedFrame,
};
use proptest::prelude::*;

/// Builds one encoded frame from a generated `(kind, run, k, payload)`
/// tuple, plus the record the scan should decode it back to.
fn build_frame(kind: usize, run: u64, k: u32, payload: &[u8]) -> (Vec<u8>, Record) {
    match kind % 3 {
        0 => (
            data_frame(run, k, payload),
            Record::Data {
                run,
                k,
                payload_len: payload.len() as u32,
            },
        ),
        1 => {
            // Derive a small tag list from the same inputs so consume
            // frames vary in length without a dedicated strategy.
            let tags: Vec<TagSegment> = (0..(payload.len() % 4))
                .map(|i| TagSegment {
                    run: run.wrapping_add(i as u64),
                    start: k.wrapping_add(i as u32),
                    len: 1 + i as u32,
                })
                .collect();
            (consume_frame(&tags), Record::Consume(tags))
        }
        _ => (rewind_frame(), Record::Rewind),
    }
}

/// Concatenates `frames` and remembers each frame's `(offset, len)`.
fn concat(frames: &[(Vec<u8>, Record)]) -> (Vec<u8>, Vec<(u64, u32)>) {
    let mut log = Vec::new();
    let mut extents = Vec::new();
    for (bytes, _) in frames {
        extents.push((log.len() as u64, bytes.len() as u32));
        log.extend_from_slice(bytes);
    }
    (log, extents)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round trip with a torn tail: truncating the log at an arbitrary
    /// byte recovers every frame that fits entirely before the cut and
    /// nothing else, and reports the valid length as the end of the
    /// last intact frame.
    #[test]
    fn torn_log_recovers_exact_frame_prefix(
        specs in prop::collection::vec(
            (0usize..3, any::<u64>(), any::<u32>(), prop::collection::vec(any::<u8>(), 0..48)),
            0..10,
        ),
        cut_seed in any::<u64>(),
    ) {
        let frames: Vec<(Vec<u8>, Record)> = specs
            .iter()
            .map(|(kind, run, k, payload)| build_frame(*kind, *run, *k, payload))
            .collect();
        let (log, extents) = concat(&frames);
        let cut = (cut_seed % (log.len() as u64 + 1)) as usize;

        let (scanned, valid_len) = scan(&log[..cut]);

        // Exactly the frames that fit before the cut survive.
        let intact: Vec<&(u64, u32)> = extents
            .iter()
            .filter(|(off, len)| off + *len as u64 <= cut as u64)
            .collect();
        prop_assert_eq!(scanned.len(), intact.len(), "wrong number of recovered frames");
        let expect_valid = intact.last().map_or(0, |(off, len)| off + *len as u64);
        prop_assert_eq!(valid_len, expect_valid, "valid length not at a frame boundary");

        for (i, frame) in scanned.iter().enumerate() {
            let (off, len) = *intact[i];
            let expect = ScannedFrame {
                offset: off,
                frame_len: len,
                record: frames[i].1.clone(),
            };
            prop_assert_eq!(frame, &expect, "frame {} decoded differently", i);
            // Data payloads survive byte-exactly and re-verify their CRC
            // when re-read from the log — the spill read path.
            if let Record::Data { run, k, .. } = frames[i].1 {
                let raw = &log[off as usize..(off + len as u64) as usize];
                let (r, kk, payload) = decode_data_frame(raw).expect("re-decode spilled frame");
                prop_assert_eq!(r, run);
                prop_assert_eq!(kk, k);
                prop_assert_eq!(payload, &specs[i].3[..]);
            }
        }
    }

    /// Corrupting any single byte never yields a phantom record: the
    /// scan returns some prefix of the clean decode (the corrupted
    /// frame and everything after it drop out; frames before it are
    /// untouched).
    #[test]
    fn corrupt_byte_only_truncates(
        specs in prop::collection::vec(
            (0usize..3, any::<u64>(), any::<u32>(), prop::collection::vec(any::<u8>(), 0..32)),
            1..8,
        ),
        pos_seed in any::<u64>(),
        flip in 1u8..255,
    ) {
        let frames: Vec<(Vec<u8>, Record)> = specs
            .iter()
            .map(|(kind, run, k, payload)| build_frame(*kind, *run, *k, payload))
            .collect();
        let (mut log, extents) = concat(&frames);
        let pos = (pos_seed % log.len() as u64) as usize;
        log[pos] ^= flip;

        let (scanned, valid_len) = scan(&log);

        // Every frame fully before the corrupted byte must survive; the
        // containing frame must not decode to something else.
        let clean_before = extents
            .iter()
            .take_while(|(off, len)| off + *len as u64 <= pos as u64)
            .count();
        prop_assert!(
            scanned.len() >= clean_before,
            "corruption at byte {} destroyed {} intact preceding frames",
            pos,
            clean_before - scanned.len()
        );
        for (i, frame) in scanned.iter().take(clean_before).enumerate() {
            prop_assert_eq!(&frame.record, &frames[i].1, "preceding frame {} changed", i);
        }
        // The scan never reads past the last frame it vouches for.
        prop_assert!(valid_len <= log.len() as u64);
    }
}
