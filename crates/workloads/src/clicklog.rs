//! ClickLog input generation (paper §5.1).
//!
//! "The input takes the form of text files ... Each input line contains an
//! IP address. The output is the count of the number of unique IP
//! addresses in each geographic region. We simulate the geolocation
//! function to avoid external API calls."
//!
//! Keys are logical IP identifiers in `0..num_ips`; the simulated
//! geolocation function maps an IP to its region by equal adjacent key
//! ranges, exactly matching the partition generator. [`ip_string`]
//! renders a key as a dotted quad for the text-file form used in examples.

use crate::zipf::ZipfSampler;
use hurricane_common::DetRng;

/// Generator parameters for one ClickLog input.
#[derive(Debug, Clone)]
pub struct ClickLogSpec {
    /// Number of distinct IP addresses (keys).
    pub num_ips: usize,
    /// Number of geographic regions.
    pub regions: usize,
    /// Zipf skew parameter `s` (0 = uniform).
    pub skew: f64,
    /// Number of click records to generate.
    pub records: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClickLogSpec {
    fn default() -> Self {
        Self {
            num_ips: 1 << 16,
            regions: 32,
            skew: 0.0,
            records: 100_000,
            seed: 0xC11C,
        }
    }
}

/// A deterministic stream of click records.
pub struct ClickLogGen {
    sampler: ZipfSampler,
    rng: DetRng,
    spec: ClickLogSpec,
    emitted: u64,
}

impl ClickLogGen {
    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (no IPs, no regions, more regions
    /// than IPs).
    pub fn new(spec: ClickLogSpec) -> Self {
        assert!(spec.num_ips > 0 && spec.regions > 0);
        assert!(spec.regions <= spec.num_ips);
        Self {
            sampler: ZipfSampler::new(spec.num_ips, spec.skew),
            rng: DetRng::new(spec.seed),
            spec,
            emitted: 0,
        }
    }

    /// The generator's spec.
    pub fn spec(&self) -> &ClickLogSpec {
        &self.spec
    }

    /// The simulated geolocation function: region of IP key `ip`.
    ///
    /// Equal adjacent key ranges — identical to the partition generator,
    /// so region loads follow [`crate::zipf::region_masses`].
    pub fn region_of(&self, ip: u32) -> u32 {
        region_of(ip, self.spec.num_ips, self.spec.regions)
    }
}

impl Iterator for ClickLogGen {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.emitted >= self.spec.records {
            return None;
        }
        self.emitted += 1;
        Some(self.sampler.sample(&mut self.rng) as u32)
    }
}

/// The simulated geolocation function as a free function.
pub fn region_of(ip: u32, num_ips: usize, regions: usize) -> u32 {
    let r = (ip as u64 * regions as u64 / num_ips as u64) as u32;
    r.min(regions as u32 - 1)
}

/// Renders an IP key as a dotted quad (for the text-file input form).
pub fn ip_string(ip: u32) -> String {
    // Spread keys over the address space so examples look like real logs.
    let x = hurricane_common::SplitMix64::mix(ip as u64) as u32;
    format!(
        "{}.{}.{}.{}",
        (x >> 24) & 0xff,
        (x >> 16) & 0xff,
        (x >> 8) & 0xff,
        x & 0xff
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_exactly_records() {
        let generated: Vec<u32> = ClickLogGen::new(ClickLogSpec {
            records: 1234,
            ..Default::default()
        })
        .collect();
        assert_eq!(generated.len(), 1234);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = ClickLogSpec {
            records: 100,
            skew: 0.8,
            ..Default::default()
        };
        let a: Vec<u32> = ClickLogGen::new(spec.clone()).collect();
        let b: Vec<u32> = ClickLogGen::new(spec).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn regions_partition_key_space() {
        let num_ips = 1000;
        let regions = 7;
        let mut last = 0;
        for ip in 0..num_ips as u32 {
            let r = region_of(ip, num_ips, regions);
            assert!(r < regions as u32);
            assert!(r >= last, "region must be monotone in key");
            last = r;
        }
        assert_eq!(region_of(0, num_ips, regions), 0);
        assert_eq!(region_of(999, num_ips, regions), 6);
    }

    #[test]
    fn skewed_stream_loads_head_region() {
        let spec = ClickLogSpec {
            num_ips: 1 << 14,
            regions: 8,
            skew: 1.0,
            records: 50_000,
            seed: 9,
        };
        let generator = ClickLogGen::new(spec);
        let regions = generator.spec().regions;
        let num_ips = generator.spec().num_ips;
        let mut counts = vec![0u64; regions];
        for ip in generator {
            counts[region_of(ip, num_ips, regions) as usize] += 1;
        }
        assert!(
            counts[0] > counts[regions - 1] * 5,
            "head region should dominate: {counts:?}"
        );
    }

    #[test]
    fn uniform_stream_is_balanced() {
        let spec = ClickLogSpec {
            num_ips: 1 << 14,
            regions: 8,
            skew: 0.0,
            records: 80_000,
            seed: 10,
        };
        let generator = ClickLogGen::new(spec);
        let regions = generator.spec().regions;
        let num_ips = generator.spec().num_ips;
        let mut counts = vec![0u64; regions];
        for ip in generator {
            counts[region_of(ip, num_ips, regions) as usize] += 1;
        }
        let expect = 80_000.0 / 8.0;
        for (r, &c) in counts.iter().enumerate() {
            assert!((c as f64 - expect).abs() / expect < 0.1, "region {r}: {c}");
        }
    }

    #[test]
    fn ip_string_is_a_dotted_quad() {
        let s = ip_string(42);
        let parts: Vec<&str> = s.split('.').collect();
        assert_eq!(parts.len(), 4);
        for p in parts {
            let v: u32 = p.parse().unwrap();
            assert!(v <= 255);
        }
        assert_eq!(ip_string(42), ip_string(42));
        assert_ne!(ip_string(42), ip_string(43));
    }
}
