//! Join-relation generation (paper §5.3, HashJoin).
//!
//! "Given two relations and an equality operator between values, for each
//! distinct value of the join attribute, return the set of tuples in each
//! relation that have that value. ... we introduce skew in the first
//! (smaller) relation, causing a much larger hit rate for some keys."
//!
//! The small relation R draws its join keys from Zipf(s); the large
//! relation S draws keys uniformly. Under s = 1 a few keys appear very
//! often in R, so the join output for those keys (|R_k| × |S_k|) explodes
//! — the hit-rate skew that breaks static partitioning.

use crate::zipf::ZipfSampler;
use hurricane_common::DetRng;

/// One relation tuple: `(join_key, payload)`.
pub type Tuple = (u32, u64);

/// Parameters for a pair of join relations.
#[derive(Debug, Clone)]
pub struct JoinSpec {
    /// Distinct join-key values.
    pub num_keys: usize,
    /// Tuples in the smaller relation R.
    pub small_tuples: u64,
    /// Tuples in the larger relation S.
    pub large_tuples: u64,
    /// Zipf skew applied to R's keys (0 = uniform).
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for JoinSpec {
    fn default() -> Self {
        Self {
            num_keys: 1 << 12,
            small_tuples: 10_000,
            large_tuples: 100_000,
            skew: 0.0,
            seed: 0x101A,
        }
    }
}

/// Generates the smaller relation R (skewed keys).
pub fn small_relation(spec: &JoinSpec) -> Vec<Tuple> {
    let sampler = ZipfSampler::new(spec.num_keys, spec.skew);
    let mut rng = DetRng::new(spec.seed).fork(1);
    (0..spec.small_tuples)
        .map(|i| (sampler.sample(&mut rng) as u32, i))
        .collect()
}

/// Generates the larger relation S (uniform keys).
pub fn large_relation(spec: &JoinSpec) -> Vec<Tuple> {
    let mut rng = DetRng::new(spec.seed).fork(2);
    (0..spec.large_tuples)
        .map(|i| (rng.gen_range(spec.num_keys as u64) as u32, i))
        .collect()
}

/// Reference nested-loop join (small inputs only): for each matching key
/// pair, emits `(key, r_payload, s_payload)`. Used as the correctness
/// oracle for the engine implementations.
pub fn reference_join(r: &[Tuple], s: &[Tuple]) -> Vec<(u32, u64, u64)> {
    use std::collections::HashMap;
    let mut by_key: HashMap<u32, Vec<u64>> = HashMap::new();
    for &(k, p) in r {
        by_key.entry(k).or_default().push(p);
    }
    let mut out = Vec::new();
    for &(k, sp) in s {
        if let Some(rps) = by_key.get(&k) {
            for &rp in rps {
                out.push((k, rp, sp));
            }
        }
    }
    out
}

/// Expected join output size per key-range partition, used by the
/// simulator: hit rate of partition p is (R mass in p) × (S mass in p).
pub fn partition_hit_weights(spec: &JoinSpec, partitions: usize) -> Vec<f64> {
    let masses = crate::zipf::region_masses(spec.num_keys, partitions, spec.skew);
    // S is uniform over partitions; output size ∝ R-mass × S-mass ∝ R-mass.
    masses
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(skew: f64) -> JoinSpec {
        JoinSpec {
            num_keys: 256,
            small_tuples: 2_000,
            large_tuples: 8_000,
            skew,
            seed: 77,
        }
    }

    #[test]
    fn relations_have_requested_sizes() {
        let s = spec(0.0);
        assert_eq!(small_relation(&s).len(), 2_000);
        assert_eq!(large_relation(&s).len(), 8_000);
    }

    #[test]
    fn generation_is_deterministic() {
        let s = spec(1.0);
        assert_eq!(small_relation(&s), small_relation(&s));
        assert_eq!(large_relation(&s), large_relation(&s));
    }

    #[test]
    fn skew_concentrates_small_relation_keys() {
        let uniform = small_relation(&spec(0.0));
        let skewed = small_relation(&spec(1.0));
        let top_count = |rel: &[Tuple]| {
            let mut counts = std::collections::HashMap::new();
            for &(k, _) in rel {
                *counts.entry(k).or_insert(0u64) += 1;
            }
            counts.values().copied().max().unwrap()
        };
        assert!(
            top_count(&skewed) > top_count(&uniform) * 5,
            "skewed top key must be much hotter"
        );
    }

    #[test]
    fn reference_join_is_exact_on_a_tiny_case() {
        let r = vec![(1, 10), (1, 11), (2, 20)];
        let s = vec![(1, 100), (3, 300), (2, 200), (1, 101)];
        let mut out = reference_join(&r, &s);
        out.sort_unstable();
        assert_eq!(
            out,
            vec![
                (1, 10, 100),
                (1, 10, 101),
                (1, 11, 100),
                (1, 11, 101),
                (2, 20, 200)
            ]
        );
    }

    #[test]
    fn hit_weights_skewed_by_r() {
        let w_uniform = partition_hit_weights(&spec(0.0), 32);
        let w_skewed = partition_hit_weights(&spec(1.0), 32);
        let imb_u = crate::zipf::imbalance(&w_uniform);
        let imb_s = crate::zipf::imbalance(&w_skewed);
        assert!(imb_u < 1.5);
        assert!(imb_s > 10.0, "skewed hit weights imbalance {imb_s}");
    }
}
