//! Synthetic workload generators for the Hurricane evaluation.
//!
//! Every experiment in the paper runs on synthetic inputs:
//!
//! * **ClickLog** (§5.1): lines of IP addresses drawn from a Zipf
//!   distribution with parameter `s ∈ [0, 1]`; regions are formed by
//!   "dividing the key range into equal parts, so that adjacent keys are
//!   placed in each partition". [`zipf`] implements the sampler and the
//!   analytic region-mass computation; [`clicklog`] the record generator.
//! * **HashJoin** (§5.3): two relations with skew injected into the
//!   smaller one, "causing a much larger hit rate for some keys" —
//!   [`join`].
//! * **PageRank** (§5.3): RMAT power-law graphs (Chakrabarti et al.,
//!   the generator the paper itself uses) — [`rmat`].
//!
//! All generators are deterministic given a seed.

pub mod clicklog;
pub mod join;
pub mod regions;
pub mod rmat;
pub mod zipf;

pub use regions::RegionWeights;
pub use zipf::ZipfSampler;
