//! Region-weight models driving the skew experiments.
//!
//! The simulator and benchmark harness consume *region weights*: the
//! fraction of the input landing in each downstream partition. Weights
//! can come from the faithful generator (Zipf over the key range, equal
//! adjacent ranges — [`RegionWeights::zipf`]) or from the paper's reported
//! imbalance ladder directly ([`RegionWeights::paper_ladder`]), which is
//! useful when an experiment's shape depends on hitting the published
//! imbalance factors {1×, 2.3×, 8×, 28×, 64×} exactly. DESIGN.md §1
//! documents why both exist.

use crate::zipf;

/// The skew parameters the paper sweeps, with their reported imbalance
/// factors and (for s = 1) the reported largest-region share.
pub const PAPER_SKEWS: [(f64, f64); 5] =
    [(0.0, 1.0), (0.2, 2.3), (0.5, 8.0), (0.8, 28.0), (1.0, 64.0)];

/// The largest-region input share the paper reports for s = 1 (19.6 %).
pub const PAPER_LARGEST_FRACTION_S1: f64 = 0.196;

/// Per-region input fractions (sum to 1).
#[derive(Debug, Clone, PartialEq)]
pub struct RegionWeights {
    weights: Vec<f64>,
}

impl RegionWeights {
    /// Wraps raw weights, normalizing them to sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a non-positive or non-finite
    /// entry, or sums to zero.
    pub fn from_raw(mut weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "need at least one region");
        assert!(
            weights.iter().all(|&w| w > 0.0 && w.is_finite()),
            "weights must be positive and finite"
        );
        let sum: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= sum;
        }
        Self { weights }
    }

    /// Uniform weights over `regions` regions (the s = 0 baseline).
    pub fn uniform(regions: usize) -> Self {
        Self::from_raw(vec![1.0; regions])
    }

    /// The faithful generator: Zipf(`s`) over `num_keys` keys, split into
    /// `regions` equal adjacent key ranges (paper §5.1).
    pub fn zipf(num_keys: usize, regions: usize, s: f64) -> Self {
        Self::from_raw(zipf::region_masses(num_keys, regions, s))
    }

    /// Weights engineered to reproduce a target largest/smallest imbalance
    /// with a power-law profile: `w_i ∝ (i + 1)^-a` with `a` chosen so
    /// `w_0 / w_{R-1}` equals `target_imbalance`.
    pub fn with_imbalance(regions: usize, target_imbalance: f64) -> Self {
        assert!(regions >= 1);
        assert!(target_imbalance >= 1.0);
        if regions == 1 || target_imbalance == 1.0 {
            return Self::uniform(regions);
        }
        let a = target_imbalance.ln() / (regions as f64).ln();
        let weights = (0..regions).map(|i| ((i + 1) as f64).powf(-a)).collect();
        Self::from_raw(weights)
    }

    /// Weights matching the paper's reported imbalance for skew `s`
    /// (nearest entry of [`PAPER_SKEWS`]).
    pub fn paper_ladder(regions: usize, s: f64) -> Self {
        let (_, imb) = PAPER_SKEWS
            .iter()
            .min_by(|a, b| {
                (a.0 - s)
                    .abs()
                    .partial_cmp(&(b.0 - s).abs())
                    .expect("finite")
            })
            .expect("ladder is non-empty");
        Self::with_imbalance(regions, *imb)
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether there are no regions (never true).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The normalized weights (sum to 1).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Largest/smallest weight ratio.
    pub fn imbalance(&self) -> f64 {
        zipf::imbalance(&self.weights)
    }

    /// Share of the largest region.
    pub fn largest_fraction(&self) -> f64 {
        zipf::largest_fraction(&self.weights)
    }

    /// Splits `total` items (bytes, records) across regions in proportion
    /// to the weights, conserving the total exactly.
    pub fn split(&self, total: u64) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.weights.len());
        let mut acc = 0.0f64;
        let mut assigned = 0u64;
        for &w in &self.weights {
            acc += w;
            let upto = (acc * total as f64).round() as u64;
            let upto = upto.min(total);
            out.push(upto - assigned);
            assigned = upto;
        }
        // Rounding drift lands in the last region.
        if let Some(last) = out.last_mut() {
            *last += total - assigned;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_has_unit_imbalance() {
        let w = RegionWeights::uniform(32);
        assert!((w.imbalance() - 1.0).abs() < 1e-12);
        assert!((w.largest_fraction() - 1.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn with_imbalance_hits_target() {
        for target in [2.3, 8.0, 28.0, 64.0] {
            let w = RegionWeights::with_imbalance(32, target);
            assert!(
                (w.imbalance() - target).abs() / target < 1e-9,
                "target {target}, got {}",
                w.imbalance()
            );
        }
    }

    #[test]
    fn paper_ladder_matches_published_imbalances() {
        for (s, imb) in PAPER_SKEWS {
            let w = RegionWeights::paper_ladder(32, s);
            assert!(
                (w.imbalance() - imb).abs() / imb < 1e-9,
                "s={s}: want {imb}, got {}",
                w.imbalance()
            );
        }
    }

    #[test]
    fn paper_ladder_largest_fraction_near_reported() {
        // The published 19.6 % at s = 1 is approximated by the power-law
        // profile; assert the same order of magnitude (documented gap).
        let w = RegionWeights::paper_ladder(32, 1.0);
        let f = w.largest_fraction();
        assert!((0.1..0.35).contains(&f), "largest fraction {f}");
    }

    #[test]
    fn split_conserves_total() {
        let w = RegionWeights::paper_ladder(32, 1.0);
        for total in [0u64, 1, 1000, 1_000_000_007] {
            let parts = w.split(total);
            assert_eq!(parts.iter().sum::<u64>(), total);
            assert_eq!(parts.len(), 32);
        }
    }

    #[test]
    fn split_respects_proportions() {
        let w = RegionWeights::with_imbalance(4, 8.0);
        let parts = w.split(1_000_000);
        for (i, &p) in parts.iter().enumerate() {
            let expect = w.weights()[i] * 1e6;
            assert!(
                (p as f64 - expect).abs() < 2.0,
                "region {i}: {p} vs {expect}"
            );
        }
    }

    #[test]
    fn zipf_weights_normalized() {
        let w = RegionWeights::zipf(1 << 16, 32, 0.8);
        let sum: f64 = w.weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(w.imbalance() > 1.0);
    }

    #[test]
    fn single_region_is_trivial() {
        let w = RegionWeights::uniform(1);
        assert_eq!(w.split(100), vec![100]);
        assert!((w.largest_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_weights() {
        RegionWeights::from_raw(vec![1.0, 0.0]);
    }
}
