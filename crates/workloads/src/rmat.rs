//! R-MAT graph generation (paper §5.3, PageRank inputs).
//!
//! "We use the RMAT graph generator \[15\] to generate real-world power-law
//! input graphs, i.e. graphs whose degree distribution is skewed." The
//! paper's sizes: RMAT-24 (16 M vertices, 256 M edges), RMAT-27 (128 M
//! vertices, 2 B edges), RMAT-30 (1 B vertices, 16 B edges) — all with the
//! standard edge factor of 16.
//!
//! Each edge is placed by recursively descending the adjacency matrix with
//! quadrant probabilities `(a, b, c, d)`; the Graph500 defaults
//! `(0.57, 0.19, 0.19, 0.05)` are used.

use hurricane_common::DetRng;

/// Standard R-MAT quadrant probabilities (Graph500).
pub const RMAT_A: f64 = 0.57;
/// Probability of the top-right quadrant.
pub const RMAT_B: f64 = 0.19;
/// Probability of the bottom-left quadrant.
pub const RMAT_C: f64 = 0.19;
/// The paper's edge factor: edges = 16 × vertices.
pub const EDGE_FACTOR: u64 = 16;

/// Parameters for one R-MAT graph.
#[derive(Debug, Clone, Copy)]
pub struct RmatSpec {
    /// log₂ of the vertex count (RMAT-`scale`).
    pub scale: u32,
    /// Number of edges (use [`RmatSpec::with_edge_factor`] for the
    /// standard 16×).
    pub edges: u64,
    /// RNG seed.
    pub seed: u64,
}

impl RmatSpec {
    /// The paper's configuration: `2^scale` vertices, 16 edges per vertex.
    pub fn with_edge_factor(scale: u32, seed: u64) -> Self {
        Self {
            scale,
            edges: EDGE_FACTOR << scale,
            seed,
        }
    }

    /// Number of vertices, `2^scale`.
    pub fn vertices(&self) -> u64 {
        1 << self.scale
    }
}

/// A deterministic stream of directed edges `(src, dst)`.
pub struct RmatGen {
    spec: RmatSpec,
    rng: DetRng,
    emitted: u64,
}

impl RmatGen {
    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is 0 or greater than 40.
    pub fn new(spec: RmatSpec) -> Self {
        assert!(spec.scale >= 1 && spec.scale <= 40, "unreasonable scale");
        Self {
            rng: DetRng::new(spec.seed),
            spec,
            emitted: 0,
        }
    }

    /// The generator's spec.
    pub fn spec(&self) -> &RmatSpec {
        &self.spec
    }

    fn one_edge(&mut self) -> (u64, u64) {
        let mut src = 0u64;
        let mut dst = 0u64;
        for _ in 0..self.spec.scale {
            src <<= 1;
            dst <<= 1;
            let u = self.rng.gen_f64();
            if u < RMAT_A {
                // Top-left: both bits 0.
            } else if u < RMAT_A + RMAT_B {
                dst |= 1;
            } else if u < RMAT_A + RMAT_B + RMAT_C {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        (src, dst)
    }
}

impl Iterator for RmatGen {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        if self.emitted >= self.spec.edges {
            return None;
        }
        self.emitted += 1;
        Some(self.one_edge())
    }
}

/// Out-degree counts for a small graph (analysis/testing helper).
pub fn out_degrees(edges: &[(u64, u64)], vertices: u64) -> Vec<u64> {
    let mut deg = vec![0u64; vertices as usize];
    for &(s, _) in edges {
        deg[s as usize] += 1;
    }
    deg
}

/// Expected fraction of edges whose source falls in each of `partitions`
/// equal vertex ranges — the simulator's load model for PageRank
/// partitions. R-MAT with a > d concentrates edges in low vertex ids, so
/// partition 0 is the heavy one.
pub fn partition_edge_weights(scale: u32, partitions: usize) -> Vec<f64> {
    assert!(partitions.is_power_of_two() && partitions > 0);
    assert!((partitions as u64) <= (1u64 << scale));
    // The source vertex's top log2(partitions) bits decide its partition;
    // each bit is 1 with probability c + d = 0.24 independently (by the
    // recursive construction's per-level marginal for the source bit).
    let bits = partitions.trailing_zeros();
    let p1 = RMAT_C + (1.0 - RMAT_A - RMAT_B - RMAT_C);
    let mut out = vec![0.0f64; partitions];
    for (p, slot) in out.iter_mut().enumerate() {
        let mut w = 1.0;
        for b in 0..bits {
            let bit = (p >> (bits - 1 - b)) & 1;
            w *= if bit == 1 { p1 } else { 1.0 - p1 };
        }
        *slot = w;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_requested_edge_count() {
        let spec = RmatSpec::with_edge_factor(10, 1);
        assert_eq!(spec.vertices(), 1024);
        assert_eq!(spec.edges, 16 * 1024);
        let edges: Vec<_> = RmatGen::new(spec).collect();
        assert_eq!(edges.len(), 16 * 1024);
        for &(s, d) in &edges {
            assert!(s < 1024 && d < 1024);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> = RmatGen::new(RmatSpec::with_edge_factor(8, 3)).collect();
        let b: Vec<_> = RmatGen::new(RmatSpec::with_edge_factor(8, 3)).collect();
        let c: Vec<_> = RmatGen::new(RmatSpec::with_edge_factor(8, 4)).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let spec = RmatSpec::with_edge_factor(12, 5);
        let edges: Vec<_> = RmatGen::new(spec).collect();
        let mut deg = out_degrees(&edges, spec.vertices());
        deg.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = deg.iter().sum();
        let top_1pct: u64 = deg[..deg.len() / 100].iter().sum();
        let share = top_1pct as f64 / total as f64;
        assert!(
            share > 0.2,
            "top 1% of vertices should hold a large edge share, got {share:.3}"
        );
        // And a long tail of low-degree vertices exists.
        let zeros = deg.iter().filter(|&&d| d == 0).count();
        assert!(zeros > deg.len() / 10, "many vertices have no out-edges");
    }

    #[test]
    fn partition_weights_sum_to_one_and_skew_to_zero() {
        for parts in [2usize, 8, 32] {
            let w = partition_edge_weights(20, parts);
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(
                w[0] > w[parts - 1] * 2.0,
                "partition 0 must be heavy: {w:?}"
            );
        }
    }

    #[test]
    fn partition_weights_match_observed_edges() {
        let spec = RmatSpec::with_edge_factor(14, 9);
        let parts = 8usize;
        let expect = partition_edge_weights(spec.scale, parts);
        let mut counts = vec![0u64; parts];
        let shift = spec.scale - 3;
        for (s, _) in RmatGen::new(spec) {
            counts[(s >> shift) as usize] += 1;
        }
        let total: u64 = counts.iter().sum();
        for p in 0..parts {
            let got = counts[p] as f64 / total as f64;
            assert!(
                (got - expect[p]).abs() < 0.02,
                "partition {p}: observed {got:.3} vs analytic {:.3}",
                expect[p]
            );
        }
    }
}
