//! Zipf sampling and region-mass analysis.
//!
//! The paper's skew knob is a Zipf distribution with parameter
//! `s ∈ {0, 0.2, 0.5, 0.8, 1.0}` over a key range that is then split into
//! equal adjacent ranges ("regions"). [`ZipfSampler`] draws keys exactly
//! (inverse-CDF over the precomputed mass table); [`region_masses`]
//! computes the expected fraction of records landing in each region, which
//! the simulator uses directly instead of materializing terabytes of
//! records.

use hurricane_common::DetRng;

/// An exact Zipf(s) sampler over keys `0..n`.
///
/// Key `k` (0-based) has probability proportional to `(k + 1)^-s`.
/// `s = 0` is the uniform distribution; `s = 1` is the paper's "high
/// skew" setting.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` keys with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or if `s` is negative or not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one key");
        assert!(
            s >= 0.0 && s.is_finite(),
            "exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += ((k + 1) as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating point drift at the top end.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Self { cdf }
    }

    /// Number of keys.
    pub fn num_keys(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one key.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.gen_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability of key `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Total probability mass of keys in `[lo, hi)`.
    pub fn mass(&self, lo: usize, hi: usize) -> f64 {
        if lo >= hi {
            return 0.0;
        }
        let upper = self.cdf[hi - 1];
        let lower = if lo == 0 { 0.0 } else { self.cdf[lo - 1] };
        upper - lower
    }
}

/// Expected fraction of records in each of `regions` equal adjacent key
/// ranges under Zipf(`s`) over `num_keys` keys — the paper's partitioning
/// scheme ("we generate partitions by dividing the key range into equal
/// parts, so that adjacent keys are placed in each partition").
///
/// # Panics
///
/// Panics if `regions == 0` or `regions > num_keys`.
pub fn region_masses(num_keys: usize, regions: usize, s: f64) -> Vec<f64> {
    assert!(regions > 0 && regions <= num_keys);
    let sampler = ZipfSampler::new(num_keys, s);
    let mut out = Vec::with_capacity(regions);
    for r in 0..regions {
        let lo = r * num_keys / regions;
        let hi = (r + 1) * num_keys / regions;
        out.push(sampler.mass(lo, hi));
    }
    out
}

/// Ratio of the largest to the smallest region mass — the paper's
/// "imbalance between the largest and smallest region".
pub fn imbalance(masses: &[f64]) -> f64 {
    let max = masses.iter().copied().fold(f64::MIN, f64::max);
    let min = masses.iter().copied().fold(f64::MAX, f64::min);
    if min <= 0.0 {
        f64::INFINITY
    } else {
        max / min
    }
}

/// Fraction of all records in the largest region (19.6 % at s = 1 in the
/// paper's configuration).
pub fn largest_fraction(masses: &[f64]) -> f64 {
    let total: f64 = masses.iter().sum();
    let max = masses.iter().copied().fold(f64::MIN, f64::max);
    max / total
}

/// Amdahl's-law best-case speedup when the largest region is the serial
/// fraction (paper §5.1): `1 / (f + (1 - f)/machines)`.
pub fn amdahl_speedup(largest_fraction: f64, machines: usize) -> f64 {
    1.0 / (largest_fraction + (1.0 - largest_fraction) / machines as f64)
}

/// The paper's best-case *slowdown* relative to a perfectly parallel
/// uniform run: `machines / amdahl_speedup` (7.1× for f = 19.6 % on 32
/// machines).
pub fn amdahl_slowdown(largest_fraction: f64, machines: usize) -> f64 {
    machines as f64 / amdahl_speedup(largest_fraction, machines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_flat() {
        let m = region_masses(1 << 16, 32, 0.0);
        for &w in &m {
            assert!((w - 1.0 / 32.0).abs() < 1e-9);
        }
        assert!((imbalance(&m) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn masses_sum_to_one() {
        for s in [0.0, 0.2, 0.5, 0.8, 1.0] {
            let m = region_masses(100_000, 32, s);
            let sum: f64 = m.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "s={s} sum={sum}");
        }
    }

    #[test]
    fn imbalance_grows_with_s() {
        let mut prev = 0.0;
        for s in [0.0, 0.2, 0.5, 0.8, 1.0] {
            let m = region_masses(1 << 20, 32, s);
            let imb = imbalance(&m);
            assert!(imb > prev, "imbalance must grow with s (s={s}, imb={imb})");
            prev = imb;
        }
    }

    #[test]
    fn head_region_is_heaviest() {
        let m = region_masses(1 << 18, 32, 1.0);
        assert!(m[0] > m[31] * 10.0, "head range dominates under s=1");
        assert_eq!(
            m.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0,
            0
        );
    }

    #[test]
    fn sampler_matches_pmf() {
        let n = 64;
        let z = ZipfSampler::new(n, 1.0);
        let mut rng = DetRng::new(7);
        let draws = 200_000;
        let mut counts = vec![0u32; n];
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        for k in [0usize, 1, 5, 20, 63] {
            let expect = z.pmf(k) * draws as f64;
            let got = counts[k] as f64;
            let tol = 4.0 * expect.sqrt() + 6.0;
            assert!(
                (got - expect).abs() < tol,
                "key {k}: got {got}, expect {expect:.1}"
            );
        }
    }

    #[test]
    fn sample_is_in_range_and_deterministic() {
        let z = ZipfSampler::new(1000, 0.8);
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..1000 {
            let x = z.sample(&mut a);
            assert!(x < 1000);
            assert_eq!(x, z.sample(&mut b));
        }
    }

    #[test]
    fn mass_is_consistent_with_pmf() {
        let z = ZipfSampler::new(100, 0.5);
        let direct: f64 = (10..20).map(|k| z.pmf(k)).sum();
        assert!((z.mass(10, 20) - direct).abs() < 1e-12);
        assert_eq!(z.mass(5, 5), 0.0);
        assert!((z.mass(0, 100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amdahl_matches_paper_numbers() {
        // Paper §5.1: f = 19.6 %, 32 machines ⇒ speedup ≈ 4.5×,
        // best-case slowdown ≈ 7.1×.
        let speedup = amdahl_speedup(0.196, 32);
        assert!((speedup - 4.5).abs() < 0.05, "speedup {speedup}");
        let slowdown = amdahl_slowdown(0.196, 32);
        assert!((slowdown - 7.1).abs() < 0.1, "slowdown {slowdown}");
    }

    #[test]
    fn single_key_degenerate() {
        let z = ZipfSampler::new(1, 1.0);
        let mut rng = DetRng::new(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.pmf(0), 1.0);
    }
}
