//! ClickLog under skew: the paper's running example, end to end.
//!
//! Generates Zipf-skewed click logs at several skew levels, runs the
//! three-phase ClickLog application on the real threaded runtime, and
//! shows how task cloning reacts: the heavy region attracts clones while
//! results stay exactly equal to the serial reference.
//!
//! Run with: `cargo run --release --example clicklog_skew`

use hurricane_apps::clicklog::ClickLogJob;
use hurricane_core::HurricaneConfig;
use hurricane_storage::{ClusterConfig, StorageCluster};
use hurricane_workloads::clicklog::{ClickLogGen, ClickLogSpec};
use std::time::Duration;

fn main() {
    let job = ClickLogJob {
        regions: 8,
        num_ips: 1 << 16,
    };
    let config = HurricaneConfig {
        compute_nodes: 4,
        worker_slots: 2,
        chunk_size: 32 * 1024,
        clone_interval: Duration::from_millis(5),
        master_poll: Duration::from_millis(1),
        ..Default::default()
    };
    println!("ClickLog: 200k records, 8 regions, 4 compute nodes x 2 slots");
    for skew in [0.0, 0.5, 1.0] {
        let records: Vec<u32> = ClickLogGen::new(ClickLogSpec {
            num_ips: job.num_ips,
            regions: job.regions,
            skew,
            records: 200_000,
            seed: 0xCAFE,
        })
        .collect();
        let expected = job.reference(records.iter().copied());
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let (counts, report) = job
            .run(cluster, config.clone(), records.iter().copied())
            .expect("clicklog run");
        assert_eq!(counts, expected, "engine must match serial reference");
        let imbalance = {
            let max = *counts.iter().max().unwrap() as f64;
            let min = *counts.iter().min().unwrap().max(&1) as f64;
            max / min
        };
        println!(
            "s={skew}: elapsed {:>7.1?}  distinct-count imbalance {:>6.1}x  clones {:>2}  merges {:>2}",
            report.elapsed, imbalance, report.total_clones, report.merges_run
        );
        println!("   per-region distinct counts: {counts:?}");
    }
    println!("(results verified against the single-threaded reference at every skew)");
}
