//! Fault tolerance demonstration: kill a compute node and crash the
//! application master mid-run; the job still completes with the exact
//! result (paper §4.4).
//!
//! Run with: `cargo run --release --example fault_tolerance`

use hurricane_core::graph::GraphBuilder;
use hurricane_core::merges::ReduceMerge;
use hurricane_core::task::TaskCtx;
use hurricane_core::{HurricaneApp, HurricaneConfig};
use hurricane_storage::{ClusterConfig, StorageCluster};
use std::time::Duration;

fn main() {
    // A deliberately slow summing task so the faults land mid-flight.
    let mut g = GraphBuilder::new();
    let input = g.source("numbers");
    let total = g.bag("total");
    g.task_with_merge(
        "slow-sum",
        &[input],
        &[total],
        |ctx: &mut TaskCtx| {
            let mut acc = 0u64;
            while let Some(batch) = ctx.next_records::<u64>(0)? {
                // Simulate compute cost per chunk.
                let t = std::time::Instant::now();
                while t.elapsed() < Duration::from_micros(1500) {
                    std::hint::spin_loop();
                }
                acc += batch.iter().sum::<u64>();
            }
            ctx.write_record(0, &acc)?;
            Ok(())
        },
        ReduceMerge::new(|a: u64, b: u64| a + b),
    );

    let cluster = StorageCluster::new(4, ClusterConfig::default());
    let config = HurricaneConfig {
        compute_nodes: 4,
        worker_slots: 2,
        chunk_size: 512,
        clone_interval: Duration::from_millis(10),
        master_poll: Duration::from_millis(1),
        ..Default::default()
    };
    let app = HurricaneApp::deploy(g.build().unwrap(), cluster, config).expect("deploy");
    let n = 60_000u64;
    app.fill_source(input, 0..n).expect("fill");
    let expected = n * (n - 1) / 2;

    let mut running = app.start().expect("start");
    std::thread::sleep(Duration::from_millis(30));
    println!("t=30ms: crashing the application master (state replayed from work bags)");
    running.crash_and_recover_master().expect("master recovery");
    std::thread::sleep(Duration::from_millis(40));
    println!("t=70ms: killing compute nodes 0-2 (their workers cancel; affected tasks restart)");
    for node in 0..3 {
        running.kill_compute_node(node);
    }
    std::thread::sleep(Duration::from_millis(30));
    println!("t=100ms: restarting compute nodes 0-2 as fresh idle nodes");
    for node in 0..3 {
        running.restart_compute_node(node);
    }

    let report = running.wait().expect("run completes despite faults");
    let out: Vec<u64> = app.read_records(total).expect("read");
    println!(
        "sum = {} (expected {expected})  restarts={} master_recoveries={} clones={}",
        out[0], report.restarts, report.master_recoveries, report.total_clones
    );
    assert_eq!(out, vec![expected], "exactly-once semantics preserved");
    println!("OK: exact result despite a node failure and a master crash");
}
