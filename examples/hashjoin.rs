//! Skewed hash join on the Hurricane runtime.
//!
//! Joins a small (build) relation with Zipf-skewed keys against a large
//! uniform (probe) relation. Hot partitions — where a few keys have huge
//! hit rates — get cloned; each clone snapshots the in-memory build side
//! and pulls disjoint probe chunks, the mechanism the paper credits for
//! 18× over Spark on skewed joins.
//!
//! Run with: `cargo run --release --example hashjoin`

use hurricane_apps::hashjoin::HashJoinJob;
use hurricane_core::HurricaneConfig;
use hurricane_storage::{ClusterConfig, StorageCluster};
use hurricane_workloads::join::{large_relation, reference_join, small_relation, JoinSpec};
use std::time::Duration;

fn main() {
    let config = HurricaneConfig {
        compute_nodes: 4,
        worker_slots: 2,
        chunk_size: 32 * 1024,
        clone_interval: Duration::from_millis(5),
        master_poll: Duration::from_millis(1),
        ..Default::default()
    };
    println!("HashJoin: 20k ⋈ 100k tuples, 8 partitions");
    for skew in [0.0, 1.0] {
        let spec = JoinSpec {
            num_keys: 2048,
            small_tuples: 20_000,
            large_tuples: 100_000,
            skew,
            seed: 0x70AD,
        };
        let r = small_relation(&spec);
        let s = large_relation(&spec);
        let expected = reference_join(&r, &s).len();
        let cluster = StorageCluster::new(4, ClusterConfig::default());
        let (out, report) = HashJoinJob { partitions: 8 }
            .run(cluster, config.clone(), &r, &s)
            .expect("join run");
        assert_eq!(
            out.len(),
            expected,
            "join cardinality vs nested-loop oracle"
        );
        println!(
            "s={skew}: {} output tuples in {:>7.1?}  clones {:>2}",
            out.len(),
            report.elapsed,
            report.total_clones
        );
    }
    println!("(cardinality verified against the nested-loop reference)");
}
