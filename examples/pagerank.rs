//! PageRank over an RMAT power-law graph on the Hurricane runtime.
//!
//! Five unrolled iterations over a 4096-vertex RMAT graph. The skewed
//! degree distribution concentrates edge traffic in a few vertex ranges,
//! so iteration tasks clone; merge reconciliation is a keyed
//! contribution sum.
//!
//! Run with: `cargo run --release --example pagerank`

use hurricane_apps::pagerank::PageRankJob;
use hurricane_core::HurricaneConfig;
use hurricane_storage::{ClusterConfig, StorageCluster};
use hurricane_workloads::rmat::{RmatGen, RmatSpec};
use std::time::Duration;

fn main() {
    let vertices = 1u32 << 12;
    let spec = RmatSpec {
        scale: 12,
        edges: 8 * (1 << 12),
        seed: 0x9A9E,
    };
    let edges: Vec<(u32, u32)> = RmatGen::new(spec)
        .map(|(u, v)| (u as u32, v as u32))
        .collect();
    let job = PageRankJob {
        vertices,
        iterations: 5,
    };
    let config = HurricaneConfig {
        compute_nodes: 4,
        worker_slots: 2,
        chunk_size: 32 * 1024,
        clone_interval: Duration::from_millis(5),
        master_poll: Duration::from_millis(1),
        ..Default::default()
    };
    println!(
        "PageRank: RMAT-12 ({} vertices, {} edges), 5 iterations",
        vertices,
        edges.len()
    );
    let expected = job.reference(&edges);
    let cluster = StorageCluster::new(4, ClusterConfig::default());
    let (ranks, report) = job.run(cluster, config, &edges).expect("pagerank run");
    let max_err = ranks
        .iter()
        .zip(&expected)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    let mut top: Vec<(usize, f64)> = ranks.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!(
        "elapsed {:?}  clones {}  merges {}  max error vs reference {max_err:.2e}",
        report.elapsed, report.total_clones, report.merges_run
    );
    println!("top-5 vertices by rank:");
    for (v, r) in top.iter().take(5) {
        println!("  v{v:<6} {r:.6}");
    }
    assert!(max_err < 1e-9, "engine must match the reference iteration");
}
