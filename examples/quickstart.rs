//! Quickstart: build a two-task Hurricane application from scratch.
//!
//! A word-frequency pipeline: task `tokenize` maps lines to words, task
//! `count` aggregates per-word counts with a keyed merge so that clones
//! of the counting task reconcile automatically.
//!
//! Run with: `cargo run --example quickstart`

use hurricane_core::graph::GraphBuilder;
use hurricane_core::merges::KeyedMerge;
use hurricane_core::task::TaskCtx;
use hurricane_core::{HurricaneApp, HurricaneConfig};
use hurricane_storage::{ClusterConfig, StorageCluster};

fn main() {
    // 1. Declare the dataflow graph: bags are circles of data, tasks are
    //    the code between them (paper §2.1).
    let mut g = GraphBuilder::new();
    let lines = g.source("lines");
    let words = g.bag("words");
    let counts = g.bag("counts");

    g.task("tokenize", &[lines], &[words], |ctx: &mut TaskCtx| {
        while let Some(batch) = ctx.next_records::<String>(0)? {
            for line in batch {
                for word in line.split_whitespace() {
                    ctx.write_record(0, &word.to_lowercase())?;
                }
            }
        }
        Ok(())
    });

    // The counting task declares a merge: if Hurricane clones it under
    // load, each clone's partial counts are reconciled by summing values
    // of equal keys — no sorting, no shuffling (paper §2.3).
    g.task_with_merge(
        "count",
        &[words],
        &[counts],
        |ctx: &mut TaskCtx| {
            let mut table = std::collections::HashMap::<String, u64>::new();
            while let Some(batch) = ctx.next_records::<String>(0)? {
                for word in batch {
                    *table.entry(word).or_insert(0) += 1;
                }
            }
            for (word, n) in table {
                ctx.write_record(0, &(word, n))?;
            }
            Ok(())
        },
        KeyedMerge::<String, u64, _>::new(|a, b| a + b),
    );

    // 2. Deploy on a storage cluster (4 in-process storage nodes) and
    //    fill the source bag.
    let cluster = StorageCluster::new(4, ClusterConfig::default());
    let mut app = HurricaneApp::deploy(g.build().unwrap(), cluster, HurricaneConfig::default())
        .expect("deploy");
    let corpus = [
        "the quick brown fox jumps over the lazy dog",
        "the dog barks",
        "a quick dog",
    ];
    app.fill_source(lines, corpus.iter().map(|s| s.to_string()))
        .expect("fill");

    // 3. Run and read the sink.
    let report = app.run().expect("run");
    let mut result: Vec<(String, u64)> = app.read_records(counts).expect("read");
    result.sort();
    println!(
        "word counts ({} clones, {:?}):",
        report.total_clones, report.elapsed
    );
    for (word, n) in result {
        println!("  {word:<8} {n}");
    }
}
