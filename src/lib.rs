//! Facade crate re-exporting the Hurricane reproduction's public API.
pub use hurricane_core as core;
