//! Cross-crate integration tests: the real runtime, the real static
//! baseline, the workload generators, and the simulator must agree on
//! what matters.

use hurricane_apps::clicklog::ClickLogJob;
use hurricane_apps::BitSet;
use hurricane_baseline::{mapreduce, split_input};
use hurricane_core::HurricaneConfig;
use hurricane_storage::{ClusterConfig, StorageCluster};
use hurricane_workloads::clicklog::{region_of, ClickLogGen, ClickLogSpec};
use hurricane_workloads::RegionWeights;
use std::time::Duration;

fn config() -> HurricaneConfig {
    // `with_env_overrides` lets CI's low-memory leg re-run this suite
    // under a tiny merge budget / spill threshold unchanged.
    HurricaneConfig {
        compute_nodes: 4,
        worker_slots: 2,
        chunk_size: 16 * 1024,
        clone_interval: Duration::from_millis(10),
        master_poll: Duration::from_millis(1),
        ..Default::default()
    }
    .with_env_overrides()
}

/// Hurricane, the static baseline, and the serial reference must produce
/// identical ClickLog results on identical (skewed) input.
#[test]
fn three_engines_agree_on_clicklog() {
    let job = ClickLogJob {
        regions: 8,
        num_ips: 1 << 14,
    };
    let input: Vec<u32> = ClickLogGen::new(ClickLogSpec {
        num_ips: job.num_ips,
        regions: job.regions,
        skew: 1.0,
        records: 50_000,
        seed: 42,
    })
    .collect();
    let reference = job.reference(input.iter().copied());

    let cluster = StorageCluster::new(4, ClusterConfig::default());
    let (hurricane, _) = job
        .run(cluster, config(), input.iter().copied())
        .expect("hurricane run");

    let (results, _) = mapreduce(
        split_input(input.clone(), 8),
        job.regions,
        4,
        {
            let num_ips = job.num_ips;
            let regions = job.regions;
            move |ip: u32, emit: &mut dyn FnMut(u32, u32)| emit(region_of(ip, num_ips, regions), ip)
        },
        |region: &u32, ips: Vec<u32>| {
            let mut set = BitSet::new();
            for ip in ips {
                set.set(ip);
            }
            (*region, set.count())
        },
    );
    let mut baseline = vec![0u64; job.regions];
    for (r, c) in results.into_iter().flatten() {
        baseline[r as usize] = c;
    }

    assert_eq!(hurricane, reference);
    assert_eq!(baseline, reference);
}

/// The simulator is deterministic: identical inputs give bit-identical
/// results.
#[test]
fn simulator_is_deterministic() {
    use hurricane_sim::apps::clicklog_app;
    use hurricane_sim::spec::{ClusterSpec, HurricaneOpts};
    let w = RegionWeights::paper_ladder(32, 1.0);
    let app = clicklog_app(32e9, &w);
    let cluster = ClusterSpec::paper();
    let a = hurricane_sim::simulate(&app, &cluster, &HurricaneOpts::default());
    let b = hurricane_sim::simulate(&app, &cluster, &HurricaneOpts::default());
    assert_eq!(a.total_secs, b.total_secs);
    assert_eq!(a.total_clones, b.total_clones);
    assert_eq!(a.peak_workers, b.peak_workers);
    assert_eq!(a.timeline.len(), b.timeline.len());
}

/// Cloning helps under skew in the simulator AND in the real engine:
/// the qualitative claim both layers must share.
#[test]
fn cloning_helps_under_skew_in_both_layers() {
    // Simulator: 32 GB, s = 1.
    use hurricane_sim::apps::clicklog_app;
    use hurricane_sim::spec::{ClusterSpec, HurricaneOpts};
    let w = RegionWeights::paper_ladder(32, 1.0);
    let app = clicklog_app(32e9, &w);
    let cluster = ClusterSpec::paper();
    let with = hurricane_sim::simulate(&app, &cluster, &HurricaneOpts::default());
    let without = hurricane_sim::simulate(&app, &cluster, &HurricaneOpts::no_cloning());
    assert!(
        with.total_secs < without.total_secs * 0.9,
        "sim: cloning {:.1}s vs NC {:.1}s",
        with.total_secs,
        without.total_secs
    );
    assert!(with.total_clones > 0);
}

/// The simulated crash schedule of Figure 11 completes and is slower
/// than the fault-free run, with throughput dips visible.
#[test]
fn fig11_crash_schedule_completes() {
    let r = hurricane_bench::experiments::fig11();
    assert!(!r.timed_out);
    let buckets = r.timeline.bucketize(1.0);
    assert!(buckets.len() > 30, "a 320GB run spans many seconds");
    // There is a visible dip: some bucket is below half the peak.
    let peak = buckets.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    assert!(buckets.iter().any(|&(t, v)| t > 15.0 && v < peak * 0.5));
}

/// The Eq. 1 table: the Monte-Carlo simulation tracks the analytic bound
/// for every (b, m) the bench prints.
#[test]
fn utilization_table_consistent() {
    for (b, m, analytic, simulated) in hurricane_bench::experiments::utilization_table() {
        assert!(
            simulated >= analytic - 0.05,
            "b={b} m={m}: simulated {simulated:.3} below bound {analytic:.3}"
        );
        assert!(simulated <= 1.0 + 1e-9);
    }
}

/// Storage scaling matches the paper's headline: near-linear to 32 nodes.
#[test]
fn storage_scaling_near_linear() {
    let rows = hurricane_bench::experiments::storage_scaling();
    let single = rows[0].1;
    let last = rows.last().unwrap();
    assert_eq!(last.0, 32);
    let speedup = last.1 / single;
    assert!(
        speedup > 31.0 && speedup <= 32.0,
        "paper reports 31.9x, got {speedup:.2}x"
    );
}
