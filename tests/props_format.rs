//! Property tests for the serialization layer: the roundtrip law and the
//! never-cross-a-chunk-boundary invariant, over arbitrary record streams.

use hurricane_format::{
    decode_all, encode_all, stride_records, ChunkReader, ChunkWriter, FixedU32, FixedU64, Record,
    RecordView,
};
use proptest::prelude::*;

fn record_strategy() -> impl Strategy<Value = (u64, i64, String, Vec<u32>)> {
    (
        any::<u64>(),
        any::<i64>(),
        "[a-zA-Z0-9 ]{0,40}",
        prop::collection::vec(any::<u32>(), 0..8),
    )
}

/// A nested record exercising every view shape at once: tuple of
/// (int, (string, option of (int, string)), vec of (int, string)).
type NestedRec = (u64, (String, Option<(i64, String)>), Vec<(u32, String)>);

/// The raw material for a [`NestedRec`]: the option is folded in from a
/// bool because the proptest shim has no Option strategy.
type NestedRaw = (u64, String, (bool, i64, String), Vec<(u32, String)>);

fn nested_raw_strategy() -> impl Strategy<Value = NestedRaw> {
    (
        any::<u64>(),
        "[a-zA-Z0-9 ]{0,24}",
        (any::<bool>(), any::<i64>(), "[a-z]{0,12}"),
        prop::collection::vec((any::<u32>(), "[A-Z]{0,6}"), 0..5),
    )
}

fn build_nested(raw: NestedRaw) -> NestedRec {
    let (a, s, (some, oi, os), v) = raw;
    (a, (s, some.then_some((oi, os))), v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Encoding then decoding any record stream through chunking restores
    /// it exactly, and every chunk respects the capacity.
    #[test]
    fn chunked_roundtrip(
        records in prop::collection::vec(record_strategy(), 0..200),
        chunk_size in 64usize..2048,
    ) {
        let chunks = encode_all(records.iter().cloned(), chunk_size);
        prop_assume!(chunks.is_ok()); // Tiny chunk sizes may reject a record.
        let chunks = chunks.unwrap();
        for c in &chunks {
            prop_assert!(c.len() <= chunk_size, "chunk overflow");
            prop_assert!(!c.is_empty());
        }
        let back: Vec<_> = chunks
            .iter()
            .flat_map(|c| decode_all::<(u64, i64, String, Vec<u32>)>(c).unwrap())
            .collect();
        prop_assert_eq!(back, records);
    }

    /// Every chunk decodes independently — the property clones rely on.
    #[test]
    fn chunks_decode_independently(
        records in prop::collection::vec(any::<(u64, u64)>(), 1..300),
        chunk_size in 32usize..256,
    ) {
        let chunks = encode_all(records.iter().cloned(), chunk_size).unwrap();
        let mut total = 0;
        // Decode in reverse order: no chunk depends on a predecessor.
        for c in chunks.iter().rev() {
            total += decode_all::<(u64, u64)>(c).unwrap().len();
        }
        prop_assert_eq!(total, records.len());
    }

    /// The view law over whole chunk streams: decoding a chunk through
    /// borrowed views ([`RecordView::decode_view`]) agrees record-for-
    /// record with the owned decoder, for nested tuple/string/option/vec
    /// records, across arbitrary chunk boundaries. This is the property
    /// that makes the borrowed hot path a drop-in reading of the same
    /// wire format.
    #[test]
    fn borrowed_view_decode_agrees_with_owned(
        raw in prop::collection::vec(nested_raw_strategy(), 0..120),
        chunk_size in 48usize..1024,
    ) {
        let records: Vec<NestedRec> = raw.into_iter().map(build_nested).collect();
        let chunks = encode_all(records.iter().cloned(), chunk_size);
        prop_assume!(chunks.is_ok()); // Tiny capacities may reject a record.
        let chunks = chunks.unwrap();
        let mut viewed: Vec<NestedRec> = Vec::new();
        let mut owned: Vec<NestedRec> = Vec::new();
        for c in &chunks {
            // Each chunk decodes independently on the view path too.
            let n = ChunkReader::<NestedRec>::new(c)
                .for_each(|v| viewed.push(<NestedRec as RecordView>::view_to_owned(v)))
                .unwrap();
            let own = decode_all::<NestedRec>(c).unwrap();
            prop_assert_eq!(n as usize, own.len(), "view path record count");
            owned.extend(own);
        }
        prop_assert_eq!(&viewed, &owned, "view decode must equal owned decode");
        prop_assert_eq!(&viewed, &records, "and both must equal the input");
    }

    /// Trusted sequence iteration ([`hurricane_format::SeqView::iter`],
    /// which re-reads a validated span with unchecked decodes) agrees
    /// element-for-element with the owned decoder, for varint, string,
    /// and fixed-width element types, across arbitrary chunk boundaries.
    #[test]
    fn trusted_seq_iteration_agrees_with_owned(
        words in prop::collection::vec(
            prop::collection::vec(any::<u64>(), 0..12),
            1..60,
        ),
        names in prop::collection::vec(
            prop::collection::vec("[a-zA-Z0-9]{0,9}", 0..6),
            1..40,
        ),
        chunk_size in 256usize..2048,
    ) {
        let chunks = encode_all(words.iter().cloned(), chunk_size);
        prop_assume!(chunks.is_ok());
        let mut got: Vec<Vec<u64>> = Vec::new();
        for c in &chunks.unwrap() {
            ChunkReader::<Vec<u64>>::new(c)
                .for_each(|seq| got.push(seq.iter().collect()))
                .unwrap();
        }
        prop_assert_eq!(&got, &words);

        let chunks = encode_all(names.iter().cloned(), chunk_size);
        prop_assume!(chunks.is_ok());
        let mut got: Vec<Vec<String>> = Vec::new();
        for c in &chunks.unwrap() {
            ChunkReader::<Vec<String>>::new(c)
                .for_each(|seq| got.push(seq.iter().map(str::to_string).collect()))
                .unwrap();
        }
        prop_assert_eq!(&got, &names);
    }

    /// Fixed-stride random access: `SeqView::get(i)` equals sequential
    /// iteration at position `i`, and any `split_at` concatenates back
    /// to the whole sequence.
    #[test]
    fn fixed_stride_random_access_agrees(
        words in prop::collection::vec(any::<u64>(), 0..64),
        split in 0usize..256,
    ) {
        let fixed: Vec<FixedU64> = words.iter().copied().map(FixedU64).collect();
        let mut buf = Vec::new();
        fixed.encode(&mut buf);
        let mut slice = buf.as_slice();
        let seq = Vec::<FixedU64>::decode_view(&mut slice).unwrap();
        prop_assert!(slice.is_empty());
        for (i, w) in seq.iter().enumerate() {
            prop_assert_eq!(seq.get(i), w);
        }
        let mid = split % (seq.len() + 1);
        let (a, b) = seq.split_at(mid);
        let mut rejoined: Vec<FixedU64> = a.iter().collect();
        rejoined.extend(b.iter());
        prop_assert_eq!(rejoined, fixed);
    }

    /// A chunk of fixed-stride records types as a [`hurricane_format::
    /// StrideSlice`] whose random access and iteration agree with the
    /// validating owned decoder — for every chunk boundary placement.
    #[test]
    fn stride_records_agree_with_owned_decode(
        tuples in prop::collection::vec(any::<(u32, u64)>(), 1..300),
        chunk_size in 24usize..512,
    ) {
        let fixed: Vec<(FixedU32, FixedU64)> = tuples
            .iter()
            .map(|&(k, v)| (FixedU32(k), FixedU64(v)))
            .collect();
        let chunks = encode_all(fixed.iter().copied(), chunk_size).unwrap();
        let mut strided = Vec::new();
        for c in &chunks {
            let s = stride_records::<(FixedU32, FixedU64)>(c).unwrap();
            let owned = decode_all::<(FixedU32, FixedU64)>(c).unwrap();
            prop_assert_eq!(s.len(), owned.len());
            for (i, rec) in owned.iter().enumerate() {
                prop_assert_eq!(s.get(i), *rec);
            }
            strided.extend(s.iter());
        }
        prop_assert_eq!(strided, fixed);
    }

    /// `encoded_len` is exact for every record the stream writer accepts.
    #[test]
    fn encoded_len_is_exact(rec in record_strategy()) {
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        prop_assert_eq!(buf.len(), rec.encoded_len());
    }

    /// Decoding arbitrary bytes never panics (it may error).
    #[test]
    fn decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let chunk = hurricane_format::Chunk::from_vec(bytes);
        let _ = decode_all::<(u64, String)>(&chunk); // Must not panic.
        let _ = decode_all::<Vec<u64>>(&chunk);
        let _ = decode_all::<(bool, Option<i64>)>(&chunk);
    }

    /// The writer never emits a record split across two chunks: the
    /// concatenation of per-chunk decodes equals the in-order stream.
    #[test]
    fn no_record_straddles_chunks(
        count in 1usize..500,
        chunk_size in 16usize..128,
    ) {
        let records: Vec<u64> = (0..count as u64).collect();
        let mut writer = ChunkWriter::<u64>::new(chunk_size);
        let mut chunks = Vec::new();
        for r in &records {
            if let Some(c) = writer.push(r).unwrap() {
                chunks.push(c);
            }
        }
        chunks.extend(writer.finish());
        let mut restored = Vec::new();
        for c in &chunks {
            restored.extend(decode_all::<u64>(c).unwrap());
        }
        prop_assert_eq!(restored, records);
    }

    /// The SWAR trusted varint decoder agrees with the validating scalar
    /// decoder on every encoded length (1..=10 bytes) at every distance
    /// from the end of the slice — covering the 8-byte fast path, the
    /// >8-byte hybrid path, and the near-the-tail scalar fallback.
    #[test]
    fn swar_decode_agrees_with_scalar(
        len in 1usize..11,
        pad in 0usize..17,
        seed in any::<u64>(),
    ) {
        // A value whose canonical encoding is exactly `len` bytes.
        let low = if len == 1 { 0 } else { 1u64 << (7 * (len - 1)) };
        let high = if len >= 10 { u64::MAX } else { (1u64 << (7 * len)) - 1 };
        let value = low + seed % (high - low + 1);

        let mut buf = Vec::new();
        hurricane_format::varint::encode(value, &mut buf);
        prop_assert_eq!(buf.len(), len);
        buf.extend(std::iter::repeat_n(0xEEu8, pad));

        let mut validating = buf.as_slice();
        prop_assert_eq!(
            hurricane_format::varint::decode(&mut validating).unwrap(),
            value
        );
        let mut trusted = buf.as_slice();
        // SAFETY: the validating decode just accepted this position.
        let got = unsafe { hurricane_format::varint::decode_trusted(&mut trusted) };
        prop_assert_eq!(got, value);
        prop_assert_eq!(trusted.len(), validating.len(), "consumed length differs");
    }

    /// The batch kernels agree with plain iteration over arbitrary
    /// `FixedU64`/`FixedU32` runs, at every length (vector-width
    /// boundaries and stragglers included). Run with and without
    /// `--features simd`, this pins the SIMD paths to the scalar results
    /// bit-for-bit.
    #[test]
    fn simd_kernels_agree_with_scalar(
        words in prop::collection::vec(any::<u64>(), 0..70),
        keys in prop::collection::vec(any::<u32>(), 0..70),
        acc_seed in prop::collection::vec(any::<u64>(), 0..70),
        needle_idx in 0usize..70,
    ) {
        let fixed: Vec<FixedU64> = words.iter().copied().map(FixedU64).collect();
        let mut buf = Vec::new();
        fixed.encode(&mut buf);
        let mut slice = buf.as_slice();
        let seq = Vec::<FixedU64>::decode_view(&mut slice).unwrap();

        prop_assert_eq!(
            seq.popcount(),
            words.iter().map(|w| w.count_ones() as u64).sum::<u64>()
        );
        prop_assert_eq!(
            seq.wrapping_sum(),
            words.iter().fold(0u64, |a, w| a.wrapping_add(*w))
        );
        let mut acc: Vec<FixedU64> = acc_seed.iter().copied().map(FixedU64).collect();
        let mut expect: Vec<u64> = acc_seed.clone();
        if expect.len() < words.len() {
            expect.resize(words.len(), 0);
        }
        for (slot, w) in expect.iter_mut().zip(words.iter()) {
            *slot |= w;
        }
        seq.or_into(&mut acc);
        prop_assert_eq!(acc.into_iter().map(|w| w.0).collect::<Vec<_>>(), expect);

        let fixed: Vec<FixedU32> = keys.iter().copied().map(FixedU32).collect();
        let mut buf = Vec::new();
        fixed.encode(&mut buf);
        let mut slice = buf.as_slice();
        let seq = Vec::<FixedU32>::decode_view(&mut slice).unwrap();
        prop_assert_eq!(
            seq.wrapping_sum(),
            keys.iter().map(|&k| k as u64).sum::<u64>()
        );
        // Probe with a needle usually present, sometimes absent.
        let needle = keys.get(needle_idx).copied().unwrap_or(7);
        prop_assert_eq!(
            seq.count_eq(FixedU32(needle)),
            keys.iter().filter(|&&k| k == needle).count()
        );
    }
}
