//! Property tests for the serialization layer: the roundtrip law and the
//! never-cross-a-chunk-boundary invariant, over arbitrary record streams.

use hurricane_format::{decode_all, encode_all, ChunkWriter, Record};
use proptest::prelude::*;

fn record_strategy() -> impl Strategy<Value = (u64, i64, String, Vec<u32>)> {
    (
        any::<u64>(),
        any::<i64>(),
        "[a-zA-Z0-9 ]{0,40}",
        prop::collection::vec(any::<u32>(), 0..8),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Encoding then decoding any record stream through chunking restores
    /// it exactly, and every chunk respects the capacity.
    #[test]
    fn chunked_roundtrip(
        records in prop::collection::vec(record_strategy(), 0..200),
        chunk_size in 64usize..2048,
    ) {
        let chunks = encode_all(records.iter().cloned(), chunk_size);
        prop_assume!(chunks.is_ok()); // Tiny chunk sizes may reject a record.
        let chunks = chunks.unwrap();
        for c in &chunks {
            prop_assert!(c.len() <= chunk_size, "chunk overflow");
            prop_assert!(!c.is_empty());
        }
        let back: Vec<_> = chunks
            .iter()
            .flat_map(|c| decode_all::<(u64, i64, String, Vec<u32>)>(c).unwrap())
            .collect();
        prop_assert_eq!(back, records);
    }

    /// Every chunk decodes independently — the property clones rely on.
    #[test]
    fn chunks_decode_independently(
        records in prop::collection::vec(any::<(u64, u64)>(), 1..300),
        chunk_size in 32usize..256,
    ) {
        let chunks = encode_all(records.iter().cloned(), chunk_size).unwrap();
        let mut total = 0;
        // Decode in reverse order: no chunk depends on a predecessor.
        for c in chunks.iter().rev() {
            total += decode_all::<(u64, u64)>(c).unwrap().len();
        }
        prop_assert_eq!(total, records.len());
    }

    /// `encoded_len` is exact for every record the stream writer accepts.
    #[test]
    fn encoded_len_is_exact(rec in record_strategy()) {
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        prop_assert_eq!(buf.len(), rec.encoded_len());
    }

    /// Decoding arbitrary bytes never panics (it may error).
    #[test]
    fn decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let chunk = hurricane_format::Chunk::from_vec(bytes);
        let _ = decode_all::<(u64, String)>(&chunk); // Must not panic.
        let _ = decode_all::<Vec<u64>>(&chunk);
        let _ = decode_all::<(bool, Option<i64>)>(&chunk);
    }

    /// The writer never emits a record split across two chunks: the
    /// concatenation of per-chunk decodes equals the in-order stream.
    #[test]
    fn no_record_straddles_chunks(
        count in 1usize..500,
        chunk_size in 16usize..128,
    ) {
        let records: Vec<u64> = (0..count as u64).collect();
        let mut writer = ChunkWriter::<u64>::new(chunk_size);
        let mut chunks = Vec::new();
        for r in &records {
            if let Some(c) = writer.push(r).unwrap() {
                chunks.push(c);
            }
        }
        chunks.extend(writer.finish());
        let mut restored = Vec::new();
        for c in &chunks {
            restored.extend(decode_all::<u64>(c).unwrap());
        }
        prop_assert_eq!(restored, records);
    }
}
