//! Property tests for the merge library: the clone-reconciliation
//! contract. For any way of splitting a record multiset across clone
//! partials, merging must produce what a single uncloned task would have.

use hurricane_core::merges::{ConcatMerge, KeyedMerge, ReduceMerge, SetUnionMerge, SortedMerge};
use hurricane_core::task::{BagReader, BagWriter, MergeLogic};
use hurricane_format::{decode_all, Record};
use hurricane_storage::{ClusterConfig, StorageCluster};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Splits `records` into `parts` partials per `assignment`, runs `merge`,
/// and returns the decoded output.
fn run_merge<T, M>(records: &[T], assignment: &[usize], parts: usize, merge: M) -> Vec<T>
where
    T: Record + Clone,
    M: MergeLogic,
{
    // One storage node: bags are unordered *across* nodes (chunks spread
    // cyclically), so record order in a multi-node bag is not observable.
    // A single node preserves FIFO order, letting the sorted-output
    // property be asserted exactly.
    let cluster = StorageCluster::new(1, ClusterConfig::default());
    let mut writers: Vec<BagWriter> = (0..parts)
        .map(|i| {
            let bag = cluster.create_bag();
            BagWriter::open(cluster.clone(), bag, i as u64, 256)
        })
        .collect();
    let bags: Vec<_> = writers.iter().map(|w| w.bag_id()).collect();
    for (i, rec) in records.iter().enumerate() {
        writers[assignment[i % assignment.len()] % parts]
            .write_record(rec)
            .unwrap();
    }
    for w in &mut writers {
        w.flush().unwrap();
    }
    for &b in &bags {
        cluster.seal_bag(b).unwrap();
    }
    let mut readers: Vec<BagReader> = bags
        .iter()
        .enumerate()
        .map(|(i, &b)| BagReader::open(cluster.clone(), b, 100 + i as u64, 4, None))
        .collect();
    let out_bag = cluster.create_bag();
    let mut out = BagWriter::open(cluster.clone(), out_bag, 999, 256);
    merge.merge(0, &mut readers, &mut out).unwrap();
    out.flush().unwrap();
    let chunks = cluster.snapshot_bag(out_bag).unwrap();
    chunks
        .iter()
        .flat_map(|c| decode_all::<T>(c).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ReduceMerge with `+` over any partition equals the full sum.
    #[test]
    fn reduce_sum_partition_invariant(
        records in prop::collection::vec(0u64..1_000_000, 1..100),
        assignment in prop::collection::vec(0usize..4, 1..32),
        parts in 1usize..5,
    ) {
        let got: Vec<u64> = run_merge(
            &records,
            &assignment,
            parts,
            ReduceMerge::new(|a: u64, b: u64| a + b),
        );
        prop_assert_eq!(got, vec![records.iter().sum::<u64>()]);
    }

    /// SetUnionMerge equals the BTreeSet of all records, however split.
    #[test]
    fn set_union_partition_invariant(
        records in prop::collection::vec(0u32..500, 1..150),
        assignment in prop::collection::vec(0usize..4, 1..32),
        parts in 1usize..5,
    ) {
        let got: Vec<u32> = run_merge(&records, &assignment, parts, SetUnionMerge::<u32>::new());
        let expect: Vec<u32> = records.iter().copied().collect::<BTreeSet<_>>().into_iter().collect();
        prop_assert_eq!(got, expect);
    }

    /// SortedMerge yields a sorted permutation of the input multiset.
    #[test]
    fn sorted_merge_partition_invariant(
        records in prop::collection::vec(any::<u32>(), 0..150),
        assignment in prop::collection::vec(0usize..4, 1..32),
        parts in 1usize..5,
    ) {
        let got: Vec<u32> = run_merge(&records, &assignment, parts, SortedMerge::<u32>::new());
        let mut expect = records.clone();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// KeyedMerge with `+` equals a hash-aggregation of all records.
    #[test]
    fn keyed_merge_partition_invariant(
        records in prop::collection::vec((0u32..20, 0u64..1000), 1..150),
        assignment in prop::collection::vec(0usize..4, 1..32),
        parts in 1usize..5,
    ) {
        let got: Vec<(u32, u64)> = run_merge(
            &records,
            &assignment,
            parts,
            KeyedMerge::<u32, u64, _>::new(|a, b| a + b),
        );
        let mut expect = std::collections::BTreeMap::<u32, u64>::new();
        for &(k, v) in &records {
            *expect.entry(k).or_insert(0) += v;
        }
        let expect: Vec<(u32, u64)> = expect.into_iter().collect();
        prop_assert_eq!(got, expect);
    }

    /// ConcatMerge preserves the record multiset.
    #[test]
    fn concat_partition_invariant(
        records in prop::collection::vec(any::<u64>(), 0..150),
        assignment in prop::collection::vec(0usize..4, 1..32),
        parts in 1usize..5,
    ) {
        let mut got: Vec<u64> = run_merge(&records, &assignment, parts, ConcatMerge);
        let mut expect = records.clone();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}

// Silence the unused-import lint for Arc used only via StorageCluster's Arc
// return type inference.
#[allow(dead_code)]
fn _keep(_: Arc<StorageCluster>) {}
