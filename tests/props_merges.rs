//! Property tests for the merge library: the clone-reconciliation
//! contract. For any way of splitting a record multiset across clone
//! partials, merging must produce what a single uncloned task would have.

use hurricane_core::merges::{
    ConcatMerge, KeyedMerge, MedianMerge, ReduceMerge, SetUnionMerge, SortedMerge, TopKMerge,
};
use hurricane_core::task::{BagReader, BagWriter, MergeLogic};
use hurricane_core::EngineError;
use hurricane_format::{decode_all, Record, SeqView};
use hurricane_storage::{ClusterConfig, StorageCluster};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Splits `records` into `parts` partials per `assignment`, runs `merge`,
/// and returns the decoded output.
fn run_merge<T, M>(records: &[T], assignment: &[usize], parts: usize, merge: M) -> Vec<T>
where
    T: Record + Clone,
    M: MergeLogic,
{
    run_merge_chunked(records, assignment, parts, 256, merge)
}

/// [`run_merge`] with an explicit chunk capacity, so properties can vary
/// where chunk boundaries fall between records.
fn run_merge_chunked<T, M>(
    records: &[T],
    assignment: &[usize],
    parts: usize,
    chunk_size: usize,
    merge: M,
) -> Vec<T>
where
    T: Record + Clone,
    M: MergeLogic,
{
    // One storage node: bags are unordered *across* nodes (chunks spread
    // cyclically), so record order in a multi-node bag is not observable.
    // A single node preserves FIFO order, letting the sorted-output
    // property be asserted exactly.
    let cluster = StorageCluster::new(1, ClusterConfig::default());
    let mut writers: Vec<BagWriter> = (0..parts)
        .map(|i| {
            let bag = cluster.create_bag();
            BagWriter::open(cluster.clone(), bag, i as u64, chunk_size)
        })
        .collect();
    let bags: Vec<_> = writers.iter().map(|w| w.bag_id()).collect();
    for (i, rec) in records.iter().enumerate() {
        writers[assignment[i % assignment.len()] % parts]
            .write_record(rec)
            .unwrap();
    }
    for w in &mut writers {
        w.flush().unwrap();
    }
    for &b in &bags {
        cluster.seal_bag(b).unwrap();
    }
    let mut readers: Vec<BagReader> = bags
        .iter()
        .enumerate()
        .map(|(i, &b)| BagReader::open(cluster.clone(), b, 100 + i as u64, 4, None))
        .collect();
    let out_bag = cluster.create_bag();
    // The output capacity is generous: a merged record (e.g. a keyed
    // accumulator that concatenated many values) can be larger than any
    // input record, and output chunk boundaries are not under test.
    let mut out = BagWriter::open(cluster.clone(), out_bag, 999, 1 << 16);
    merge.merge(0, &mut readers, &mut out).unwrap();
    out.flush().unwrap();
    let chunks = cluster.snapshot_bag(out_bag).unwrap();
    chunks
        .iter()
        .flat_map(|c| decode_all::<T>(c).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ReduceMerge with `+` over any partition equals the full sum.
    #[test]
    fn reduce_sum_partition_invariant(
        records in prop::collection::vec(0u64..1_000_000, 1..100),
        assignment in prop::collection::vec(0usize..4, 1..32),
        parts in 1usize..5,
    ) {
        let got: Vec<u64> = run_merge(
            &records,
            &assignment,
            parts,
            ReduceMerge::new(|a: u64, b: u64| a + b),
        );
        prop_assert_eq!(got, vec![records.iter().sum::<u64>()]);
    }

    /// SetUnionMerge equals the BTreeSet of all records, however split.
    #[test]
    fn set_union_partition_invariant(
        records in prop::collection::vec(0u32..500, 1..150),
        assignment in prop::collection::vec(0usize..4, 1..32),
        parts in 1usize..5,
    ) {
        let got: Vec<u32> = run_merge(&records, &assignment, parts, SetUnionMerge::<u32>::new());
        let expect: Vec<u32> = records.iter().copied().collect::<BTreeSet<_>>().into_iter().collect();
        prop_assert_eq!(got, expect);
    }

    /// SortedMerge yields a sorted permutation of the input multiset.
    #[test]
    fn sorted_merge_partition_invariant(
        records in prop::collection::vec(any::<u32>(), 0..150),
        assignment in prop::collection::vec(0usize..4, 1..32),
        parts in 1usize..5,
    ) {
        let got: Vec<u32> = run_merge(&records, &assignment, parts, SortedMerge::<u32>::new());
        let mut expect = records.clone();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// KeyedMerge with `+` equals a hash-aggregation of all records.
    #[test]
    fn keyed_merge_partition_invariant(
        records in prop::collection::vec((0u32..20, 0u64..1000), 1..150),
        assignment in prop::collection::vec(0usize..4, 1..32),
        parts in 1usize..5,
    ) {
        let got: Vec<(u32, u64)> = run_merge(
            &records,
            &assignment,
            parts,
            KeyedMerge::<u32, u64, _>::new(|a, b| a + b),
        );
        let mut expect = std::collections::BTreeMap::<u32, u64>::new();
        for &(k, v) in &records {
            *expect.entry(k).or_insert(0) += v;
        }
        let expect: Vec<(u32, u64)> = expect.into_iter().collect();
        prop_assert_eq!(got, expect);
    }

    /// ConcatMerge preserves the record multiset.
    #[test]
    fn concat_partition_invariant(
        records in prop::collection::vec(any::<u64>(), 0..150),
        assignment in prop::collection::vec(0usize..4, 1..32),
        parts in 1usize..5,
    ) {
        let mut got: Vec<u64> = run_merge(&records, &assignment, parts, ConcatMerge);
        let mut expect = records.clone();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}

// ---------------------------------------------------------------------
// Borrowed merges vs owned-decode references.
//
// The live merges fold borrowed `RecordView`s straight out of chunk
// bytes (owning only accumulators / survivors). Each reference below is
// the textbook owned implementation: decode every chunk with
// `decode_all` into owned records, then apply the merge semantics on
// owned values. For every way of assigning records to partials and
// every chunk-boundary placement, the two must produce identical
// output streams (multiset-identical for ConcatMerge, the one unordered
// merge).
// ---------------------------------------------------------------------

/// Owned-decode reference for `KeyedMerge`: the pre-borrowed-plane
/// implementation — BTreeMap keyed on decoded keys, owned combiner,
/// emitted in key order.
fn owned_keyed_reference<K, V>(
    combine: impl Fn(V, V) -> V + Send + Sync + 'static,
) -> impl MergeLogic
where
    K: Record + Ord + Send + Sync + 'static,
    V: Record + Send + Sync + 'static,
{
    move |_out_idx: usize,
          partials: &mut [BagReader],
          out: &mut BagWriter|
          -> Result<(), EngineError> {
        let mut table: BTreeMap<K, V> = BTreeMap::new();
        for p in partials {
            while let Some(chunk) = p.next_chunk()? {
                for (k, v) in decode_all::<(K, V)>(&chunk)? {
                    match table.remove(&k) {
                        None => {
                            table.insert(k, v);
                        }
                        Some(prev) => {
                            table.insert(k, combine(prev, v));
                        }
                    }
                }
            }
        }
        for (k, v) in table {
            out.write_record(&(k, v))?;
        }
        out.flush()?;
        Ok(())
    }
}

/// Owned-decode reference for `ReduceMerge`.
fn owned_reduce_reference<T>(combine: impl Fn(T, T) -> T + Send + Sync + 'static) -> impl MergeLogic
where
    T: Record + Send + Sync + 'static,
{
    move |_out_idx: usize,
          partials: &mut [BagReader],
          out: &mut BagWriter|
          -> Result<(), EngineError> {
        let mut acc: Option<T> = None;
        for p in partials {
            while let Some(chunk) = p.next_chunk()? {
                for rec in decode_all::<T>(&chunk)? {
                    acc = Some(match acc.take() {
                        None => rec,
                        Some(a) => combine(a, rec),
                    });
                }
            }
        }
        if let Some(a) = acc {
            out.write_record(&a)?;
            out.flush()?;
        }
        Ok(())
    }
}

/// Owned-decode reference for the sort-family merges: collect every
/// record owned, then apply `finish` to produce the output stream.
fn owned_collect_reference<T>(
    finish: impl Fn(Vec<T>) -> Vec<T> + Send + Sync + 'static,
) -> impl MergeLogic
where
    T: Record + Send + Sync + 'static,
{
    move |_out_idx: usize,
          partials: &mut [BagReader],
          out: &mut BagWriter|
          -> Result<(), EngineError> {
        let mut all = Vec::new();
        for p in partials {
            while let Some(chunk) = p.next_chunk()? {
                all.extend(decode_all::<T>(&chunk)?);
            }
        }
        for rec in finish(all) {
            out.write_record(&rec)?;
        }
        out.flush()?;
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every `MergeLogic` impl on the borrowed plane produces the same
    /// output stream as its owned-decode reference, across arbitrary
    /// partial assignments and chunk-boundary placements (records land
    /// at different offsets within different chunks as `chunk_size`
    /// varies; boundary cases include single-record chunks).
    #[test]
    fn borrowed_merge_agrees_with_owned(
        records in prop::collection::vec(
            (
                "[a-e]{0,3}",                               // String key (heap, duplicates likely)
                (0u64..1000, prop::collection::vec(0u32..99, 0..5)),
            ),
            1..80,
        ),
        nums in prop::collection::vec(0u64..10_000, 1..80),
        bitsets in prop::collection::vec(
            prop::collection::vec(any::<u64>(), 0..6),      // bitset words (SeqView fold)
            1..40,
        ),
        assignment in prop::collection::vec(0usize..4, 1..32),
        parts in 1usize..5,
        chunk_size in 96usize..512,
        k in 0usize..12,
    ) {
        type Key = String;
        type Val = (u64, Vec<u32>);
        let keyed_records: Vec<(Key, Val)> = records
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();

        // KeyedMerge: sum the counters, concatenate the vectors — an
        // accumulator with a heap field, folded in place on the live
        // path. Fold and owned combine encode the same semantics.
        fn keyed_fold(acc: &mut (u64, Vec<u32>), v: (u64, SeqView<'_, u32>)) {
            acc.0 += v.0;
            acc.1.extend(v.1.iter());
        }
        let live = KeyedMerge::<Key, Val, _>::folding(keyed_fold);
        let got: Vec<(Key, Val)> =
            run_merge_chunked(&keyed_records, &assignment, parts, chunk_size, live);
        let want: Vec<(Key, Val)> = run_merge_chunked(
            &keyed_records,
            &assignment,
            parts,
            chunk_size,
            owned_keyed_reference::<Key, Val>(|mut a, b| {
                a.0 += b.0;
                a.1.extend(b.1);
                a
            }),
        );
        prop_assert_eq!(got, want, "KeyedMerge borrowed vs owned");

        // ReduceMerge over bitset words: the SeqView fold ORs borrowed
        // word views into the accumulator in place.
        fn or_into(acc: &mut Vec<u64>, words: SeqView<'_, u64>) {
            if words.len() > acc.len() {
                acc.resize(words.len(), 0);
            }
            for (slot, w) in acc.iter_mut().zip(words.iter()) {
                *slot |= w;
            }
        }
        let got: Vec<Vec<u64>> = run_merge_chunked(
            &bitsets, &assignment, parts, chunk_size, ReduceMerge::folding(or_into),
        );
        let want: Vec<Vec<u64>> = run_merge_chunked(
            &bitsets,
            &assignment,
            parts,
            chunk_size,
            owned_reduce_reference::<Vec<u64>>(|a, b| {
                let (mut long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
                for (i, w) in short.into_iter().enumerate() {
                    long[i] |= w;
                }
                long
            }),
        );
        prop_assert_eq!(got, want, "ReduceMerge borrowed vs owned");

        // The sort family: identical output streams, not just multisets.
        let got: Vec<u64> = run_merge_chunked(
            &nums, &assignment, parts, chunk_size, SortedMerge::<u64>::new(),
        );
        let want: Vec<u64> = run_merge_chunked(
            &nums,
            &assignment,
            parts,
            chunk_size,
            owned_collect_reference::<u64>(|mut all| {
                all.sort();
                all
            }),
        );
        prop_assert_eq!(got, want, "SortedMerge borrowed vs owned");

        let got: Vec<u64> = run_merge_chunked(
            &nums, &assignment, parts, chunk_size, SetUnionMerge::<u64>::new(),
        );
        let want: Vec<u64> = run_merge_chunked(
            &nums,
            &assignment,
            parts,
            chunk_size,
            owned_collect_reference::<u64>(|all| {
                all.into_iter().collect::<BTreeSet<_>>().into_iter().collect()
            }),
        );
        prop_assert_eq!(got, want, "SetUnionMerge borrowed vs owned");

        let got: Vec<u64> = run_merge_chunked(
            &nums, &assignment, parts, chunk_size, TopKMerge::<u64>::new(k),
        );
        let want: Vec<u64> = run_merge_chunked(
            &nums,
            &assignment,
            parts,
            chunk_size,
            owned_collect_reference::<u64>(move |mut all| {
                all.sort_by(|a, b| b.cmp(a));
                all.truncate(k);
                all
            }),
        );
        prop_assert_eq!(got, want, "TopKMerge borrowed vs owned");

        let got: Vec<u64> = run_merge_chunked(
            &nums, &assignment, parts, chunk_size, MedianMerge::<u64>::new(),
        );
        let want: Vec<u64> = run_merge_chunked(
            &nums,
            &assignment,
            parts,
            chunk_size,
            owned_collect_reference::<u64>(|mut all| {
                if all.is_empty() {
                    return all;
                }
                let mid = (all.len() - 1) / 2;
                all.sort();
                vec![all[mid]]
            }),
        );
        prop_assert_eq!(got, want, "MedianMerge borrowed vs owned");

        // ConcatMerge is the unordered one: multiset identity.
        let mut got: Vec<u64> = run_merge_chunked(
            &nums, &assignment, parts, chunk_size, ConcatMerge,
        );
        let mut want = nums.clone();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want, "ConcatMerge multiset");
    }
}

// Silence the unused-import lint for Arc used only via StorageCluster's Arc
// return type inference.
#[allow(dead_code)]
fn _keep(_: Arc<StorageCluster>) {}
