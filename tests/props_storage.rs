//! Property tests for the storage layer: exactly-once delivery under
//! arbitrary client interleavings, placement balance, and the Eq. 1
//! utilization bound.

use hurricane_common::DetRng;
use hurricane_format::Chunk;
use hurricane_storage::bag::{BagClient, RemoveResult};
use hurricane_storage::batch;
use hurricane_storage::{ClusterConfig, StorageCluster, StorageEndpoint};
use proptest::prelude::*;
use std::collections::HashSet;

fn chunk(v: u64) -> Chunk {
    Chunk::from_vec(v.to_le_bytes().to_vec())
}

fn chunk_val(c: &Chunk) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(c.bytes());
    u64::from_le_bytes(b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// However many clients interleave removals in whatever order, each
    /// chunk is delivered exactly once and nothing is lost.
    #[test]
    fn exactly_once_under_interleaving(
        nodes in 1usize..6,
        items in 1u64..300,
        clients in 1usize..5,
        schedule in prop::collection::vec(0usize..4, 0..600),
        seed in any::<u64>(),
    ) {
        let cluster = StorageCluster::new(nodes, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut producer = BagClient::new(cluster.clone(), bag, seed);
        for i in 0..items {
            producer.insert(chunk(i)).unwrap();
        }
        cluster.seal_bag(bag).unwrap();
        let mut handles: Vec<BagClient> = (0..clients)
            .map(|c| BagClient::new(cluster.clone(), bag, seed ^ (c as u64 + 1)))
            .collect();
        let mut seen = HashSet::new();
        // Drive clients in the arbitrary order proptest chose...
        for &pick in &schedule {
            let client = &mut handles[pick % clients];
            if let RemoveResult::Chunk(c) = client.try_remove().unwrap() {
                prop_assert!(seen.insert(chunk_val(&c)), "duplicate delivery");
            }
        }
        // ...then drain whatever remains.
        for client in &mut handles {
            while let RemoveResult::Chunk(c) = client.try_remove().unwrap() {
                prop_assert!(seen.insert(chunk_val(&c)), "duplicate delivery");
            }
        }
        prop_assert_eq!(seen.len() as u64, items, "lost chunks");
    }

    /// Replication preserves exactly-once semantics and failover serves
    /// the full remainder after any prefix of removals.
    #[test]
    fn failover_preserves_remainder(
        items in 1u64..100,
        consumed_before_crash in 0u64..100,
        seed in any::<u64>(),
    ) {
        let cluster = StorageCluster::new(3, ClusterConfig { replication: 2 });
        let bag = cluster.create_bag();
        let mut producer = BagClient::new(cluster.clone(), bag, seed);
        for i in 0..items {
            producer.insert(chunk(i)).unwrap();
        }
        cluster.seal_bag(bag).unwrap();
        let mut consumer = BagClient::new(cluster.clone(), bag, seed ^ 1);
        let mut seen = HashSet::new();
        for _ in 0..consumed_before_crash.min(items) {
            match consumer.try_remove().unwrap() {
                RemoveResult::Chunk(c) => {
                    prop_assert!(seen.insert(chunk_val(&c)));
                }
                _ => break,
            }
        }
        cluster.node(0).fail();
        while let RemoveResult::Chunk(c) = consumer.try_remove().unwrap() {
            prop_assert!(seen.insert(chunk_val(&c)), "failover duplicate");
        }
        prop_assert_eq!(seen.len() as u64, items, "failover lost chunks");
    }

    /// Cyclic placement balances perfectly within each full cycle.
    #[test]
    fn placement_balances_full_cycles(
        nodes in 1usize..16,
        cycles in 1usize..8,
        seed in any::<u64>(),
    ) {
        let cluster = StorageCluster::new(nodes, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut client = BagClient::new(cluster.clone(), bag, seed);
        for i in 0..(nodes * cycles) as u64 {
            client.insert(chunk(i)).unwrap();
        }
        for n in 0..nodes {
            let s = cluster.node(n).sample(bag).unwrap();
            prop_assert_eq!(s.total_chunks as usize, cycles);
        }
    }

    /// Eq. 1 bounds: ρ is within (0, 1], increases with b, and the
    /// Monte-Carlo estimate respects the analytic lower bound.
    #[test]
    fn utilization_bound_holds(b in 1u32..12, m in 1u32..64, seed in any::<u64>()) {
        let rho = batch::utilization(b, m);
        prop_assert!(rho > 0.0 && rho <= 1.0);
        prop_assert!(batch::utilization(b + 1, m) >= rho);
        let mut rng = DetRng::new(seed);
        let sim = batch::simulate_utilization(b, m, 60, &mut rng);
        prop_assert!(sim >= rho - 0.08, "b={b} m={m}: sim {sim:.3} < bound {rho:.3}");
    }

    /// The insert coalescer preserves per-(bag, origin) chunk order and
    /// exactly-once delivery across arbitrary interleavings of batch
    /// sizes, flush thresholds, explicit flushes, reroutes, and a
    /// mid-stream node failure.
    ///
    /// Exactly-once holds unconditionally. The full per-stream order
    /// check applies to failure-free schedules: a reroute re-origins the
    /// whole refused run onto another node's stream (interleaving two
    /// streams' values), so after a failure the invariant is per-run
    /// contiguity, which the deterministic reroute tests pin down.
    #[test]
    fn coalescer_preserves_order_and_exactly_once(
        nodes in 2usize..6,
        window in 0usize..96,
        batch_sizes in prop::collection::vec(1usize..40, 1..12),
        fail_at in 0usize..24,
        fail_node in 0usize..6,
        seed in any::<u64>(),
    ) {
        let cluster = StorageCluster::new(nodes, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut client = StorageEndpoint::inline(cluster.clone())
            .client(bag, seed)
            .with_coalescing(window);
        let failed = fail_at < batch_sizes.len();
        let fail_node = fail_node % nodes;
        let mut next_val = 0u64;
        for (i, &n) in batch_sizes.iter().enumerate() {
            if i == fail_at {
                cluster.node(fail_node).fail();
            }
            let chunks: Vec<Chunk> = (0..n as u64).map(|k| chunk(next_val + k)).collect();
            next_val += n as u64;
            client.insert_batch_vec(chunks).unwrap();
        }
        client.flush().unwrap();
        if failed {
            cluster.node(fail_node).recover();
        }
        // Exactly once: every staged value landed somewhere, none twice.
        let landed = cluster.snapshot_bag(bag).unwrap();
        let vals: Vec<u64> = landed.iter().map(chunk_val).collect();
        let set: HashSet<u64> = vals.iter().copied().collect();
        prop_assert_eq!(vals.len() as u64, next_val, "chunk lost or duplicated");
        prop_assert_eq!(set.len() as u64, next_val, "duplicate delivery");
        if !failed {
            // A single client stages each stream's values in increasing
            // order; coalescing across batches must preserve it.
            for n in 0..nodes {
                let stream = cluster.node(n).snapshot_from(bag, n as u32).unwrap();
                let v: Vec<u64> = stream.iter().map(chunk_val).collect();
                prop_assert!(
                    v.windows(2).all(|w| w[0] < w[1]),
                    "stream order violated at node {}: {:?}", n, v
                );
            }
        }
    }

    /// Sealing is permanent for contents: a drained sealed bag stays
    /// drained no matter how clients keep probing.
    #[test]
    fn sealed_empty_is_stable(items in 0u64..50, probes in 0usize..20, seed in any::<u64>()) {
        let cluster = StorageCluster::new(2, ClusterConfig::default());
        let bag = cluster.create_bag();
        let mut client = BagClient::new(cluster.clone(), bag, seed);
        for i in 0..items {
            client.insert(chunk(i)).unwrap();
        }
        cluster.seal_bag(bag).unwrap();
        while let RemoveResult::Chunk(_) = client.try_remove().unwrap() {}
        for _ in 0..probes {
            prop_assert_eq!(client.try_remove().unwrap(), RemoveResult::Drained);
        }
    }
}
