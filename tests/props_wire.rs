//! Property tests for the storage RPC wire format: envelope round-trips
//! through framing under arbitrary socket fragmentation, and rejection
//! (never a panic, never a bogus decode) of truncated or oversized
//! frames.

use hurricane_common::{BagId, StorageNodeId};
use hurricane_format::{Chunk, CodecError};
use hurricane_storage::wire::{self, FrameBuffer, MAX_FRAME_LEN};
use hurricane_storage::{
    BagSample, ChunkRun, NodeRemoveBatch, ReplyEnvelope, RequestEnvelope, StorageError,
    StorageRequest, StorageResponse, TagSegment,
};
use proptest::prelude::*;

/// Raw material for one arbitrary request: a discriminant plus every
/// field any variant might need (the shim has no `prop_oneof`, so
/// variants are folded from a tag).
type RawRequest = ((u8, u64, u32, u64, u64), Vec<Vec<u8>>, Vec<(u64, u32, u32)>);

fn raw_request() -> impl Strategy<Value = RawRequest> {
    (
        (
            0u8..15,
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
            0u64..1_000_000,
        ),
        prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 0..5),
        prop::collection::vec((any::<u64>(), any::<u32>(), 0u32..1_000_000), 0..5),
    )
}

fn build_request(raw: RawRequest) -> StorageRequest {
    let ((tag, bag, origin, run, n), blobs, raw_tags) = raw;
    let bag = BagId(bag);
    let chunks: Vec<Chunk> = blobs.into_iter().map(Chunk::from_vec).collect();
    let tags: Vec<TagSegment> = raw_tags
        .into_iter()
        .map(|(run, start, len)| TagSegment { run, start, len })
        .collect();
    match tag {
        0 => StorageRequest::InsertBatch {
            bag,
            origin,
            run,
            chunks: ChunkRun::new(chunks),
        },
        1 => StorageRequest::RemoveBatch {
            bag,
            origin,
            max_n: n as usize,
        },
        2 => StorageRequest::MirrorConsumed { bag, origin, tags },
        3 => StorageRequest::Sample { bag },
        4 => StorageRequest::ReadAt {
            bag,
            index: n as usize,
        },
        5 => StorageRequest::Snapshot { bag },
        6 => StorageRequest::SnapshotFrom { bag, origin },
        7 => StorageRequest::Seal { bag },
        8 => StorageRequest::Rewind { bag },
        9 => StorageRequest::Discard { bag },
        10 => StorageRequest::Collect { bag },
        11 => StorageRequest::Drain,
        12 => StorageRequest::IsDrained,
        13 => StorageRequest::ClaimConsumed { bag, origin, tags },
        _ => StorageRequest::Ping,
    }
}

/// Raw material for one arbitrary reply result.
type RawReply = (
    u8,
    u64,
    u32,
    Vec<Vec<u8>>,
    Vec<(u64, u32, u32)>,
    (bool, bool),
);

fn raw_reply() -> impl Strategy<Value = RawReply> {
    (
        0u8..14,
        any::<u64>(),
        any::<u32>(),
        prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 0..5),
        prop::collection::vec((any::<u64>(), any::<u32>(), 0u32..1_000_000), 0..4),
        (any::<bool>(), any::<bool>()),
    )
}

fn build_reply_result(raw: RawReply) -> Result<StorageResponse, StorageError> {
    let (tag, big, small, blobs, raw_tags, (flag_a, flag_b)) = raw;
    let chunks: Vec<Chunk> = blobs.into_iter().map(Chunk::from_vec).collect();
    let tags: Vec<TagSegment> = raw_tags
        .into_iter()
        .map(|(run, start, len)| TagSegment { run, start, len })
        .collect();
    match tag {
        0 => Ok(StorageResponse::Inserted),
        1 => Ok(StorageResponse::Removed(NodeRemoveBatch {
            chunks,
            tags,
            exhausted: flag_a,
            eof: flag_a && flag_b,
        })),
        2 => Ok(StorageResponse::Mirrored),
        3 => Ok(StorageResponse::Sampled(BagSample {
            total_chunks: big,
            removed_chunks: big / 2,
            remaining_chunks: big - big / 2,
            remaining_bytes: big.wrapping_mul(3),
            total_bytes: big.wrapping_mul(7),
            resident_bytes: big.wrapping_mul(5),
            sealed: flag_a,
        })),
        4 => Ok(StorageResponse::ChunkAt(chunks.into_iter().next())),
        5 => Ok(StorageResponse::Chunks(chunks)),
        6 => Ok(StorageResponse::Done),
        7 => Ok(StorageResponse::Drained(flag_b)),
        8 => Ok(StorageResponse::Pong),
        9 => Ok(StorageResponse::Claimed(tags)),
        10 => Err(StorageError::NodeDown(StorageNodeId(small))),
        11 => Err(StorageError::BagSealed(BagId(big))),
        12 => Err(StorageError::Timeout(StorageNodeId(small))),
        _ => Err(StorageError::Codec(CodecError::InvalidTag(tag))),
    }
}

/// Delivers `stream` to `fb` in fragments whose sizes cycle through
/// `cuts`, collecting every completed frame. Errors fail the test.
fn deliver(
    fb: &mut FrameBuffer,
    stream: &[u8],
    cuts: &[usize],
) -> Result<Vec<Vec<u8>>, CodecError> {
    let mut frames = Vec::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < stream.len() {
        let step = if cuts.is_empty() {
            stream.len()
        } else {
            (cuts[i % cuts.len()] % 97) + 1
        };
        i += 1;
        let end = (pos + step).min(stream.len());
        fb.push(&stream[pos..end]);
        pos = end;
        while let Some(frame) = fb.next_frame()? {
            frames.push(frame);
        }
    }
    Ok(frames)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Any request envelope survives encode → frame → arbitrarily
    /// fragmented delivery → decode, byte-exact.
    #[test]
    fn request_roundtrips_through_fragmented_frames(
        raw in raw_request(),
        id in any::<u64>(),
        client in any::<u64>(),
        seq in any::<u64>(),
        cuts in prop::collection::vec(0usize..10_000, 0..8),
    ) {
        let env = RequestEnvelope { id, client, seq, request: build_request(raw) };
        let mut payload = Vec::new();
        wire::encode_request(&env, &mut payload);
        let mut stream = Vec::new();
        wire::frame(&payload, &mut stream);

        let mut fb = FrameBuffer::new();
        let frames = deliver(&mut fb, &stream, &cuts).unwrap();
        prop_assert_eq!(frames.len(), 1);
        let mut slice = frames[0].as_slice();
        let back = wire::decode_request(&mut slice).unwrap();
        prop_assert!(slice.is_empty(), "decode must consume the whole frame");
        prop_assert_eq!(back, env);
    }

    /// A stream of several framed envelopes — requests and replies mixed
    /// by direction never are, but frames are direction-agnostic —
    /// reassembles in order however the reads split or coalesce.
    #[test]
    fn coalesced_streams_preserve_frame_order(
        raws in prop::collection::vec(raw_reply(), 1..6),
        cuts in prop::collection::vec(0usize..10_000, 0..6),
    ) {
        let envs: Vec<ReplyEnvelope> = raws
            .into_iter()
            .enumerate()
            .map(|(i, raw)| ReplyEnvelope { id: i as u64, result: build_reply_result(raw) })
            .collect();
        let mut stream = Vec::new();
        let mut payload = Vec::new();
        for env in &envs {
            payload.clear();
            wire::encode_reply(env, &mut payload);
            wire::frame(&payload, &mut stream);
        }

        let mut fb = FrameBuffer::new();
        let frames = deliver(&mut fb, &stream, &cuts).unwrap();
        prop_assert_eq!(frames.len(), envs.len());
        for (frame, want) in frames.iter().zip(&envs) {
            let mut slice = frame.as_slice();
            let back = wire::decode_reply(&mut slice).unwrap();
            prop_assert!(slice.is_empty());
            prop_assert_eq!(&back, want);
        }
        prop_assert_eq!(fb.pending(), 0, "no stray bytes after the last frame");
    }

    /// Every strict prefix of an encoded envelope fails to decode — and
    /// never panics. (Totality over adversarial truncation.)
    #[test]
    fn truncated_payloads_are_rejected(
        raw in raw_request(),
        cut_seed in any::<u64>(),
    ) {
        let env = RequestEnvelope { id: 1, client: 2, seq: 3, request: build_request(raw) };
        let mut payload = Vec::new();
        wire::encode_request(&env, &mut payload);
        let cut = (cut_seed as usize) % payload.len().max(1);
        let mut slice = &payload[..cut];
        prop_assert!(wire::decode_request(&mut slice).is_err());
    }

    /// Arbitrary junk fed to the frame buffer either yields frames or a
    /// codec error; it never panics, and a declared length above
    /// `MAX_FRAME_LEN` is always fatal.
    #[test]
    fn frame_buffer_is_total_over_junk(
        junk in prop::collection::vec(any::<u8>(), 0..512),
        cuts in prop::collection::vec(0usize..10_000, 0..6),
    ) {
        let mut fb = FrameBuffer::new();
        let _ = deliver(&mut fb, &junk, &cuts); // Must not panic.

        let mut fb = FrameBuffer::new();
        let mut oversized = Vec::new();
        hurricane_format::varint::encode(MAX_FRAME_LEN as u64 + 1, &mut oversized);
        oversized.extend_from_slice(&junk);
        fb.push(&oversized);
        prop_assert_eq!(fb.next_frame(), Err(CodecError::LengthOverflow));
    }
}
