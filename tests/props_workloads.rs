//! Property tests for the workload generators: distribution invariants
//! the skew experiments depend on.

use hurricane_common::DetRng;
use hurricane_workloads::rmat::{RmatGen, RmatSpec};
use hurricane_workloads::zipf::{imbalance, largest_fraction, region_masses};
use hurricane_workloads::{RegionWeights, ZipfSampler};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Zipf CDF is monotone, normalized, and pmf-consistent.
    #[test]
    fn zipf_cdf_well_formed(n in 1usize..5000, s in 0.0f64..1.5) {
        let z = ZipfSampler::new(n, s);
        let mut acc = 0.0;
        for k in 0..n {
            let p = z.pmf(k);
            prop_assert!(p >= 0.0);
            acc += p;
        }
        prop_assert!((acc - 1.0).abs() < 1e-9, "pmf sums to {acc}");
        prop_assert!((z.mass(0, n) - 1.0).abs() < 1e-9);
    }

    /// Zipf pmf is non-increasing in rank for any positive exponent.
    #[test]
    fn zipf_pmf_monotone(n in 2usize..2000, s in 0.01f64..1.5) {
        let z = ZipfSampler::new(n, s);
        for k in 1..n.min(64) {
            prop_assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-15);
        }
    }

    /// Samples always land in range; the same seed replays identically.
    #[test]
    fn zipf_sampling_total_and_deterministic(
        n in 1usize..1000,
        s in 0.0f64..1.2,
        seed in any::<u64>(),
    ) {
        let z = ZipfSampler::new(n, s);
        let mut a = DetRng::new(seed);
        let mut b = DetRng::new(seed);
        for _ in 0..50 {
            let x = z.sample(&mut a);
            prop_assert!(x < n);
            prop_assert_eq!(x, z.sample(&mut b));
        }
    }

    /// Region masses partition the unit mass, and skew monotonically
    /// raises the imbalance.
    #[test]
    fn region_masses_partition(num_keys in 64usize..10_000, regions in 1usize..33) {
        prop_assume!(regions <= num_keys);
        let uniform = region_masses(num_keys, regions, 0.0);
        let skewed = region_masses(num_keys, regions, 1.0);
        prop_assert!((uniform.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!((skewed.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(imbalance(&skewed) + 1e-9 >= imbalance(&uniform));
        prop_assert!(largest_fraction(&skewed) <= 1.0);
    }

    /// `RegionWeights::split` conserves totals exactly for any weights.
    #[test]
    fn split_conserves(
        raw in prop::collection::vec(0.001f64..100.0, 1..64),
        total in 0u64..1_000_000_000,
    ) {
        let w = RegionWeights::from_raw(raw);
        let parts = w.split(total);
        prop_assert_eq!(parts.iter().sum::<u64>(), total);
    }

    /// `with_imbalance` hits its target ratio.
    #[test]
    fn imbalance_target_is_hit(regions in 2usize..64, target in 1.0f64..200.0) {
        let w = RegionWeights::with_imbalance(regions, target);
        prop_assert!((w.imbalance() - target).abs() / target < 1e-6);
    }

    /// R-MAT edges stay inside the vertex space and replay by seed.
    #[test]
    fn rmat_edges_in_range(scale in 1u32..16, seed in any::<u64>()) {
        let spec = RmatSpec { scale, edges: 200, seed };
        let n = spec.vertices();
        let a: Vec<_> = RmatGen::new(spec).collect();
        let b: Vec<_> = RmatGen::new(spec).collect();
        prop_assert_eq!(&a, &b);
        for &(s, d) in &a {
            prop_assert!(s < n && d < n);
        }
    }
}
