//! Integration tests of the storage RPC boundary: correlation-id matching
//! under concurrent outstanding requests, request timeouts, server-loop
//! shutdown draining, the prefetcher's `b`-outstanding-requests pipeline,
//! and transport-error surfacing.

use hurricane_common::{BagId, StorageNodeId};
use hurricane_format::Chunk;
use hurricane_storage::bag::BagClient;
use hurricane_storage::prefetch::Prefetcher;
use hurricane_storage::rpc::{
    dispatch, loopback, LoopbackServer, NodeConnection, NodeServerHandle, RpcPort, StorageRequest,
    StorageResponse,
};
use hurricane_storage::{
    ClusterConfig, Membership, OnceConnect, StorageCluster, StorageEndpoint, StorageError,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn chunk(v: u64) -> Chunk {
    Chunk::from_vec(v.to_le_bytes().to_vec())
}

fn chunk_val(c: &Chunk) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(c.bytes());
    u64::from_le_bytes(b)
}

/// Correlation under load: many requests outstanding on ONE connection to
/// a server pool that dispatches on several threads (so replies really do
/// reorder), redeemed in reverse submit order. Every token must resolve to
/// exactly its own request's payload.
#[test]
fn correlation_matches_under_concurrent_outstanding_requests() {
    let node = Arc::new(hurricane_storage::StorageNode::new(StorageNodeId(0)));
    let bag = BagId(1);
    for i in 0..64u64 {
        node.insert(bag, chunk(i)).unwrap();
    }
    let server = NodeServerHandle::spawn(node, 4);
    let mut conn = NodeConnection::new(Box::new(server.connect()));
    let tokens: Vec<_> = (0..64usize)
        .map(|i| {
            conn.submit(StorageRequest::ReadAt { bag, index: i })
                .unwrap()
        })
        .collect();
    assert_eq!(conn.outstanding(), 64);
    for (i, token) in tokens.into_iter().enumerate().rev() {
        match conn.wait(token, Duration::from_secs(5)).unwrap() {
            StorageResponse::ChunkAt(Some(c)) => {
                assert_eq!(
                    chunk_val(&c),
                    i as u64,
                    "token {i} got someone else's reply"
                );
            }
            other => panic!("wrong response for token {i}: {other:?}"),
        }
    }
    assert_eq!(conn.outstanding(), 0);
}

/// A request that never gets a reply times out with an explicit error —
/// and the abandoned request's late reply is discarded, not delivered to
/// a later caller.
#[test]
fn request_timeout_surfaces_through_the_port() {
    let cluster = StorageCluster::new(1, ClusterConfig::default());
    let bag = cluster.create_bag();
    cluster.insert(0, bag, chunk(1)).unwrap();
    // A port whose single connection leads to a server nobody runs.
    let (transport, _server) = loopback(StorageNodeId(0));
    let conns = vec![NodeConnection::new(Box::new(transport))];
    let mut port = RpcPort::from_connections(cluster.clone(), conns, Duration::from_millis(30));
    let err = port.remove_batch(0, bag, 4).unwrap_err();
    assert_eq!(err, StorageError::Timeout(StorageNodeId(0)));
}

/// Shutdown must *drain*: every request submitted before shutdown is
/// answered; requests after shutdown fail with `Disconnected`.
#[test]
fn server_shutdown_drains_in_flight_requests() {
    let node = Arc::new(hurricane_storage::StorageNode::new(StorageNodeId(2)));
    let bag = BagId(7);
    let server = NodeServerHandle::spawn(node.clone(), 1);
    let mut conn = NodeConnection::new(Box::new(server.connect()));
    let tokens: Vec<_> = (0..200u64)
        .map(|i| {
            conn.submit(StorageRequest::InsertBatch {
                bag,
                origin: 2,
                run: hurricane_storage::next_run_id(),
                chunks: vec![chunk(i)].into(),
            })
            .unwrap()
        })
        .collect();
    // Shut down immediately: most of the 200 requests are still queued.
    server.shutdown();
    for token in tokens {
        assert_eq!(
            conn.wait(token, Duration::from_secs(5)).unwrap(),
            StorageResponse::Inserted,
            "a drained shutdown must answer every submitted request"
        );
    }
    // Every insert actually executed.
    assert_eq!(node.sample(bag).unwrap().total_chunks, 200);
    // The boundary is now closed.
    assert_eq!(
        conn.submit(StorageRequest::Ping).unwrap_err(),
        StorageError::Disconnected(StorageNodeId(2))
    );
}

/// The paper's pipeline claim, made observable: against a stalled
/// transport (the test plays a server that accepts but does not answer),
/// the prefetcher builds up ≥ `b` concurrently outstanding requests
/// spread over distinct nodes — not one request at a time.
#[test]
fn prefetcher_keeps_b_requests_in_flight() {
    const NODES: usize = 8;
    const B: usize = 6;
    let cluster = StorageCluster::new(NODES, ClusterConfig::default());
    let bag = cluster.create_bag();
    let mut loader = BagClient::new(cluster.clone(), bag, 1);
    let chunks: Vec<Chunk> = (0..200u64).map(chunk).collect();
    loader.insert_batch(&chunks).unwrap();
    cluster.seal_bag(bag).unwrap();

    let membership = Membership::new();
    let mut servers: Vec<LoopbackServer> = Vec::new();
    for i in 0..NODES {
        let (transport, server) = loopback(StorageNodeId(i as u32));
        membership.join(OnceConnect::new(Box::new(transport)));
        servers.push(server);
    }
    let endpoint = StorageEndpoint::custom(cluster.clone(), membership)
        .with_request_timeout(Duration::from_secs(10));
    let mut pf = Prefetcher::spawn(endpoint.client(bag, 2), B);

    // With no server answering, the pipeline must stall at exactly its
    // outstanding budget: B requests queued across B distinct nodes.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let queued: usize = servers.iter().map(|s| s.queued()).sum();
        assert!(queued <= B, "pipeline exceeded its outstanding budget");
        if queued == B {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "prefetcher never reached {B} outstanding requests (got {queued})"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    // Each outstanding request sits on a distinct node.
    assert_eq!(servers.iter().filter(|s| s.queued() == 1).count(), B);

    // Now play the server: dispatch every request against the real nodes
    // until the consumer has drained the bag.
    let consumer = std::thread::spawn(move || {
        let mut got = Vec::new();
        while let Some(c) = pf.recv().unwrap() {
            got.push(chunk_val(&c));
        }
        got
    });
    while !consumer.is_finished() {
        for (i, server) in servers.iter_mut().enumerate() {
            while let Some(env) = server.recv(Duration::from_millis(2)) {
                let result = dispatch(&cluster.node(i), env.request);
                server.reply(env.id, result);
            }
        }
    }
    let mut got = consumer.join().unwrap();
    got.sort_unstable();
    assert_eq!(
        got,
        (0..200u64).collect::<Vec<_>>(),
        "exactly once, nothing lost"
    );
}

/// Losing the transport mid-stream must surface as an error to the
/// consumer — never as a silent end-of-bag.
#[test]
fn prefetcher_surfaces_disconnect_not_silent_eof() {
    let cluster = StorageCluster::new(2, ClusterConfig::default());
    let endpoint = StorageEndpoint::channel(cluster.clone());
    let bag = cluster.create_bag();
    let mut producer = endpoint.client(bag, 1);
    for i in 0..10u64 {
        producer.insert(chunk(i)).unwrap();
    }
    // NOT sealed: after consuming everything the prefetcher keeps polling.
    let mut pf = Prefetcher::spawn(endpoint.client(bag, 2), 4);
    for _ in 0..10 {
        assert!(pf.recv().unwrap().is_some());
    }
    // Kill the server loops while the fetch pipeline is mid-poll. A dead
    // connection classifies like an unreachable node, so with every
    // server gone the pipeline surfaces all-replicas-down — an explicit
    // error either way, never a silent end-of-bag.
    endpoint.shutdown();
    match pf.recv() {
        Err(
            StorageError::Disconnected(_)
            | StorageError::AllReplicasDown(_)
            | StorageError::Timeout(_)
            | StorageError::PrefetchAborted,
        ) => {}
        other => panic!("disconnect must surface as an error, got {other:?}"),
    }
}

/// One dead server among live ones must behave like one down node: the
/// client reroutes inserts and keeps removing from the reachable nodes
/// instead of hard-failing.
#[test]
fn one_dead_server_reroutes_like_a_down_node() {
    let cluster = StorageCluster::new(3, ClusterConfig::default());
    let servers: Vec<_> = (0..3)
        .map(|i| NodeServerHandle::spawn(cluster.node(i), 1))
        .collect();
    let membership = Membership::new();
    for s in &servers {
        membership.join(OnceConnect::new(Box::new(s.connect())));
    }
    let endpoint = StorageEndpoint::custom(cluster.clone(), membership)
        .with_request_timeout(Duration::from_secs(5));
    let bag = cluster.create_bag();
    let mut client = endpoint.client(bag, 9);
    servers[1].shutdown();
    let chunks: Vec<Chunk> = (0..30u64).map(chunk).collect();
    client.insert_batch(&chunks).unwrap();
    cluster.seal_bag(bag).unwrap();
    let mut got = 0u64;
    loop {
        use hurricane_storage::BatchRemoveResult;
        match client.try_remove_batch(8).unwrap() {
            BatchRemoveResult::Chunks(c) => got += c.len() as u64,
            BatchRemoveResult::Pending => std::thread::yield_now(),
            BatchRemoveResult::Drained => break,
        }
    }
    assert_eq!(got, 30, "all chunks land on and drain from live nodes");
    // Nothing leaked onto the dead server's node through the back door.
    assert_eq!(cluster.node(1).sample(bag).unwrap().total_chunks, 0);
}

/// Full data-plane roundtrip through RPC clients: concurrent producers
/// and consumers, replication on, exactly-once delivery.
#[test]
fn rpc_clients_share_exactly_once_with_replication() {
    let cluster = StorageCluster::new(3, ClusterConfig { replication: 2 });
    let endpoint = Arc::new(StorageEndpoint::channel(cluster.clone()));
    let bag = cluster.create_bag();
    let total = 3_000u64;

    let producers: Vec<_> = (0..3u64)
        .map(|t| {
            let endpoint = endpoint.clone();
            std::thread::spawn(move || {
                let mut client = endpoint.client(bag, 100 + t);
                let ids = (t * 1000)..((t + 1) * 1000);
                let chunks: Vec<Chunk> = ids.map(chunk).collect();
                for batch in chunks.chunks(16) {
                    client.insert_batch(batch).unwrap();
                }
            })
        })
        .collect();
    let consumers: Vec<_> = (0..2u64)
        .map(|t| {
            let endpoint = endpoint.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                let mut client = endpoint.client(bag, 200 + t);
                loop {
                    use hurricane_storage::BatchRemoveResult;
                    match client.try_remove_batch(32).unwrap() {
                        BatchRemoveResult::Chunks(chunks) => {
                            got.extend(chunks.iter().map(chunk_val));
                        }
                        BatchRemoveResult::Pending => std::thread::yield_now(),
                        BatchRemoveResult::Drained => return got,
                    }
                }
            })
        })
        .collect();
    for p in producers {
        p.join().unwrap();
    }
    cluster.seal_bag(bag).unwrap();
    let mut seen = std::collections::HashSet::new();
    let mut delivered = 0u64;
    for c in consumers {
        for v in c.join().unwrap() {
            delivered += 1;
            assert!(seen.insert(v), "chunk {v} delivered more than once");
        }
    }
    assert_eq!(delivered, total);
    assert_eq!(seen.len() as u64, total);
}

/// The coalescer's whole point, asserted: the same insert traffic sends a
/// fraction of the envelopes. Four 64-chunk batches over 8 nodes cost
/// 8 envelopes with a 256-chunk window (one per node for the merged run)
/// versus 32 eager (one per node per batch).
#[test]
fn coalescer_reduces_insert_envelope_count() {
    let cluster = StorageCluster::new(8, ClusterConfig::default());
    let chunks: Vec<Chunk> = (0..256u64).map(chunk).collect();

    let inline = StorageEndpoint::inline(cluster.clone());
    let eager_bag = cluster.create_bag();
    let mut eager = inline.client(eager_bag, 7);
    for batch in chunks.chunks(64) {
        eager.insert_batch(batch).unwrap();
    }
    let eager_stats = eager.port_stats().unwrap();
    assert_eq!(eager_stats.insert_envelopes, 32, "8 nodes x 4 batches");
    assert_eq!(eager_stats.flushes, 4);

    let bag = cluster.create_bag();
    let mut coalesced = inline.client(bag, 7).with_coalescing(256);
    for batch in chunks.chunks(64) {
        coalesced.insert_batch(batch).unwrap();
    }
    coalesced.flush().unwrap();
    let stats = coalesced.port_stats().unwrap();
    assert_eq!(stats.staged_chunks, 256);
    assert_eq!(
        stats.insert_envelopes, 8,
        "one merged envelope per node for the whole window"
    );
    assert_eq!(stats.flushes, 1);
    // Same data landed, same cyclic balance (identical seed).
    for i in 0..8 {
        assert_eq!(cluster.node(i).sample(bag).unwrap().total_chunks, 32);
    }
}

/// Writer flow control (ROADMAP item): against a stalled node, a writer's
/// submits block at the configured credit instead of growing the request
/// lane unboundedly — and resume as soon as a reply frees credit.
#[test]
fn writer_credit_bounds_the_lane_on_a_stalled_node() {
    let (transport, mut server) = loopback(StorageNodeId(0));
    let mut conn = NodeConnection::with_credit(Box::new(transport), 4);
    for _ in 0..4 {
        conn.submit(StorageRequest::Ping).unwrap();
    }
    assert_eq!(conn.on_wire(), 4);
    assert_eq!(server.queued(), 4);
    // The fifth submit must block (the server answers nothing).
    let blocked = std::thread::spawn(move || {
        conn.submit(StorageRequest::Ping).unwrap();
        conn
    });
    std::thread::sleep(Duration::from_millis(60));
    assert!(
        !blocked.is_finished(),
        "submit must block at the credit, not grow the lane"
    );
    assert_eq!(server.queued(), 4, "stalled lane bounded at the credit");
    // Answer one request: credit frees, the blocked submit completes.
    let env = server.recv(Duration::from_secs(1)).unwrap();
    assert!(server.reply(env.id, Ok(StorageResponse::Pong)));
    let conn = blocked.join().unwrap();
    assert_eq!(conn.on_wire(), 4, "one freed, one newly sent");
}

/// A coalesced window split across a mid-stream node failure: staged runs
/// refused at flush reroute to live nodes, with nothing lost or doubled.
#[test]
fn coalesced_flush_reroutes_around_mid_stream_failure() {
    let cluster = StorageCluster::new(4, ClusterConfig::default());
    let bag = cluster.create_bag();
    let mut client = StorageEndpoint::inline(cluster.clone())
        .client(bag, 11)
        .with_coalescing(10_000);
    let first: Vec<Chunk> = (0..40u64).map(chunk).collect();
    client.insert_batch(&first).unwrap();
    // Node 2 dies while the window is still staged.
    cluster.node(2).fail();
    let second: Vec<Chunk> = (40..80u64).map(chunk).collect();
    client.insert_batch(&second).unwrap();
    client.flush().unwrap();
    // Exactly once across the three live nodes.
    let landed = cluster.snapshot_bag(bag).unwrap();
    let mut vals: Vec<u64> = landed.iter().map(chunk_val).collect();
    vals.sort_unstable();
    assert_eq!(vals, (0..80u64).collect::<Vec<_>>());
    cluster.node(2).recover();
    assert_eq!(
        cluster.node(2).sample(bag).unwrap().total_chunks,
        0,
        "nothing landed on the dead node"
    );
}
