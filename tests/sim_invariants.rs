//! Simulator invariants: monotonicity, conservation, and fault-model
//! sanity across arbitrary parameter draws.

use hurricane_sim::apps::{clicklog_app, hashjoin_app, pagerank_app};
use hurricane_sim::engine::simulate;
use hurricane_sim::spec::{ClusterSpec, CrashEvent, HurricaneOpts};
use hurricane_workloads::RegionWeights;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Runtime grows with input size for any machine count and skew.
    #[test]
    fn runtime_monotone_in_input(
        machines in 2usize..40,
        gb in 1.0f64..200.0,
        s in 0.0f64..1.0,
    ) {
        let cluster = ClusterSpec::paper_scaled(machines);
        let w = RegionWeights::paper_ladder(32, s);
        let small = simulate(&clicklog_app(gb * 1e9, &w), &cluster, &HurricaneOpts::default());
        let large = simulate(&clicklog_app(gb * 2.5e9, &w), &cluster, &HurricaneOpts::default());
        prop_assert!(large.total_secs >= small.total_secs * 0.999);
        prop_assert!(!small.timed_out && !large.timed_out);
    }

    /// Cloning never loses to no-cloning by more than the heuristic's
    /// modelled overhead margin, and peak instances respect the cap.
    #[test]
    fn cloning_is_safe_and_capped(
        gb in 1.0f64..100.0,
        s in 0.0f64..1.0,
        cap in 1usize..33,
    ) {
        let cluster = ClusterSpec::paper();
        let w = RegionWeights::paper_ladder(32, s);
        let app = clicklog_app(gb * 1e9, &w);
        let opts = HurricaneOpts { max_instances: Some(cap), ..HurricaneOpts::default() };
        let with = simulate(&app, &cluster, &opts);
        let without = simulate(&app, &cluster, &HurricaneOpts::no_cloning());
        prop_assert!(with.peak_task_instances <= cap.max(1));
        prop_assert!(
            with.total_secs <= without.total_secs * 1.15,
            "cloning {:.1}s vs NC {:.1}s",
            with.total_secs,
            without.total_secs
        );
    }

    /// The timeline's total bytes equals the work actually processed:
    /// at least the input volume, for any skew.
    #[test]
    fn timeline_conserves_bytes(gb in 0.5f64..50.0, s in 0.0f64..1.0) {
        let cluster = ClusterSpec::paper();
        let w = RegionWeights::paper_ladder(32, s);
        let app = clicklog_app(gb * 1e9, &w);
        let r = simulate(&app, &cluster, &HurricaneOpts::default());
        let expected: f64 = app.tasks.iter().map(|t| t.input_bytes).sum();
        prop_assert!(
            (r.timeline.total() - expected).abs() < expected * 1e-6,
            "timeline {:.3e} vs task volume {:.3e}",
            r.timeline.total(),
            expected
        );
    }

    /// Crashes delay but never wedge a run, for arbitrary crash times.
    #[test]
    fn crashes_never_wedge(
        crash_at in 5.0f64..60.0,
        node in 0usize..32,
        comes_back in prop::bool::ANY,
    ) {
        let cluster = ClusterSpec::paper();
        let w = RegionWeights::uniform(32);
        let app = clicklog_app(64e9, &w);
        let baseline = simulate(&app, &cluster, &HurricaneOpts::default());
        let opts = HurricaneOpts {
            crashes: vec![CrashEvent {
                at: crash_at,
                node,
                back_at: comes_back.then_some(crash_at + 10.0),
            }],
            ..HurricaneOpts::default()
        };
        let r = simulate(&app, &cluster, &opts);
        prop_assert!(!r.timed_out, "crash wedged the run");
        prop_assert!(r.total_secs + 1e-6 >= baseline.total_secs.min(crash_at),
            "crashed run faster than fault-free");
    }

    /// Higher batch factors never slow a disk-bound run.
    #[test]
    fn batch_factor_monotone(gb in 100.0f64..400.0) {
        let cluster = ClusterSpec::paper();
        let w = RegionWeights::uniform(32);
        let app = clicklog_app(gb * 1e9, &w);
        let mut prev = f64::INFINITY;
        for b in [1u32, 3, 10, 32] {
            let opts = HurricaneOpts { batch_factor: b, ..HurricaneOpts::default() };
            let r = simulate(&app, &cluster, &opts);
            prop_assert!(r.total_secs <= prev * 1.001, "b={b} slower than smaller b");
            prev = r.total_secs;
        }
    }

    /// Join and PageRank cost models also complete deterministically.
    #[test]
    fn other_apps_complete(scale in 18u32..26, s in 0.0f64..1.0) {
        let cluster = ClusterSpec::paper();
        let w = RegionWeights::zipf(1 << 14, 32, s);
        let j = simulate(&hashjoin_app(3.2e9, 32e9, &w), &cluster, &HurricaneOpts::default());
        prop_assert!(!j.timed_out && j.total_secs > 0.0);
        let p = simulate(&pagerank_app(scale, 3, 32), &cluster, &HurricaneOpts::default());
        prop_assert!(!p.timed_out && p.total_secs > 0.0);
        let p2 = simulate(&pagerank_app(scale, 3, 32), &cluster, &HurricaneOpts::default());
        prop_assert_eq!(p.total_secs, p2.total_secs, "determinism");
    }
}
