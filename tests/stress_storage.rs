//! Concurrency stress tests for the sharded storage hot path.
//!
//! The bag abstraction's whole value (paper §2.2) is that any number of
//! task clones can share one input bag with zero coordination because the
//! storage layer guarantees exactly-once chunk delivery. These tests hammer
//! one bag with concurrent batched inserters and removers — the exact
//! traffic pattern task cloning creates — and assert the invariant holds:
//! every chunk delivered exactly once, nothing lost, and `BagSample`
//! (which the master's cloning heuristic polls) stays consistent
//! throughout and exact at the end.

use hurricane_format::Chunk;
use hurricane_storage::bag::{BagClient, BatchRemoveResult};
use hurricane_storage::{ClusterConfig, StorageCluster, StorageEndpoint};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const NODES: usize = 8;
const INSERTERS: u64 = 4;
const REMOVERS: u64 = 4;
const CHUNKS_PER_INSERTER: u64 = 2_000;
const INSERT_BATCH: usize = 7;
const REMOVE_BATCH: usize = 13;

fn chunk(v: u64) -> Chunk {
    Chunk::from_vec(v.to_le_bytes().to_vec())
}

fn chunk_val(c: &Chunk) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(c.bytes());
    u64::from_le_bytes(b)
}

/// Runs the stress pattern on `cluster` and checks exactly-once delivery
/// plus exact final sample totals. `make_client` decides the storage path
/// (direct in-process calls, or messages over the RPC boundary).
fn stress_with(
    cluster: Arc<StorageCluster>,
    make_client: impl Fn(hurricane_common::BagId, u64) -> BagClient + Send + Sync,
) {
    let bag = cluster.create_bag();
    let total = INSERTERS * CHUNKS_PER_INSERTER;

    // Concurrent sampler: BagSample invariants must hold at every instant
    // while inserters and removers race (the master polls mid-flight).
    let sampling = Arc::new(AtomicBool::new(true));
    let sampler = {
        let cluster = cluster.clone();
        let sampling = sampling.clone();
        std::thread::spawn(move || {
            let mut polls = 0u64;
            while sampling.load(Ordering::Relaxed) {
                let s = cluster.sample_bag(bag).unwrap();
                assert_eq!(
                    s.remaining_chunks,
                    s.total_chunks - s.removed_chunks,
                    "sample arithmetic must be internally consistent"
                );
                assert!(s.remaining_bytes <= s.total_bytes);
                assert!((0.0..=1.0).contains(&s.progress()));
                polls += 1;
            }
            polls
        })
    };

    let scope_result = std::thread::scope(|s| {
        let inserters: Vec<_> = (0..INSERTERS)
            .map(|t| {
                let make_client = &make_client;
                s.spawn(move || {
                    let mut client = make_client(bag, 1000 + t);
                    let ids = (t * CHUNKS_PER_INSERTER)..((t + 1) * CHUNKS_PER_INSERTER);
                    let chunks: Vec<Chunk> = ids.map(chunk).collect();
                    for batch in chunks.chunks(INSERT_BATCH) {
                        client.insert_batch(batch).unwrap();
                    }
                })
            })
            .collect();

        let removers: Vec<_> = (0..REMOVERS)
            .map(|t| {
                let make_client = &make_client;
                s.spawn(move || {
                    let mut client = make_client(bag, 2000 + t);
                    let mut got = Vec::new();
                    loop {
                        match client.try_remove_batch(REMOVE_BATCH).unwrap() {
                            BatchRemoveResult::Chunks(chunks) => {
                                got.extend(chunks.iter().map(chunk_val));
                            }
                            BatchRemoveResult::Pending => std::thread::yield_now(),
                            BatchRemoveResult::Drained => return got,
                        }
                    }
                })
            })
            .collect();

        for h in inserters {
            h.join().unwrap();
        }
        cluster.seal_bag(bag).unwrap();

        let mut seen = HashSet::with_capacity(total as usize);
        let mut delivered = 0u64;
        for h in removers {
            for v in h.join().unwrap() {
                delivered += 1;
                assert!(seen.insert(v), "chunk {v} delivered more than once");
            }
        }
        (seen, delivered)
    });
    let (seen, delivered) = scope_result;
    sampling.store(false, Ordering::Relaxed);
    let polls = sampler.join().unwrap();
    assert!(polls > 0, "sampler must have raced the data plane");

    assert_eq!(delivered, total, "no chunk may be lost");
    assert_eq!(seen.len() as u64, total);

    // Final sample: exact totals, fully drained, sealed.
    let s = cluster.sample_bag(bag).unwrap();
    assert_eq!(s.total_chunks, total);
    assert_eq!(s.removed_chunks, total);
    assert_eq!(s.remaining_chunks, 0);
    assert_eq!(s.remaining_bytes, 0);
    assert_eq!(s.total_bytes, total * 8);
    assert!(s.sealed);
}

#[test]
fn concurrent_batched_insert_remove_is_exactly_once() {
    let cluster = StorageCluster::new(NODES, ClusterConfig::default());
    let c2 = cluster.clone();
    stress_with(cluster, move |bag, seed| {
        BagClient::new(c2.clone(), bag, seed)
    });
}

#[test]
fn concurrent_batched_insert_remove_with_replication() {
    // Replication factor 2: every batch is mirrored to a backup and every
    // batched remove advances the backup pointer. Exactly-once and exact
    // sample totals must survive the extra traffic.
    let cluster = StorageCluster::new(NODES, ClusterConfig { replication: 2 });
    let c2 = cluster.clone();
    stress_with(cluster, move |bag, seed| {
        BagClient::new(c2.clone(), bag, seed)
    });
}

#[test]
fn concurrent_insert_remove_over_rpc_is_exactly_once() {
    // The same traffic pattern with every data-plane operation flowing
    // through the RPC boundary: correlated messages to per-node server
    // pools, concurrent clients each on their own connections.
    let cluster = StorageCluster::new(NODES, ClusterConfig::default());
    let endpoint = StorageEndpoint::channel(cluster.clone());
    stress_with(cluster, move |bag, seed| endpoint.client(bag, seed));
}

#[test]
fn concurrent_insert_remove_over_rpc_with_replication() {
    // RPC path with replication: overlapped backup-ack writes and
    // RPC-mirrored pointer advances must preserve exactly-once delivery
    // and exact sample totals.
    let cluster = StorageCluster::new(NODES, ClusterConfig { replication: 2 });
    let endpoint = StorageEndpoint::channel(cluster.clone());
    stress_with(cluster, move |bag, seed| endpoint.client(bag, seed));
}

#[test]
fn mixed_single_and_batched_clients_share_exactly_once() {
    // Batched and unbatched clients on the same bag: the pointer-advance
    // paths must compose (a batch is not a separate namespace).
    let cluster = StorageCluster::new(NODES, ClusterConfig::default());
    let bag = cluster.create_bag();
    let total = 4_000u64;

    let producer = {
        let cluster = cluster.clone();
        std::thread::spawn(move || {
            let mut batched = BagClient::new(cluster.clone(), bag, 1);
            let mut single = BagClient::new(cluster, bag, 2);
            let chunks: Vec<Chunk> = (0..total).map(chunk).collect();
            for (i, run) in chunks.chunks(16).enumerate() {
                if i % 2 == 0 {
                    batched.insert_batch(run).unwrap();
                } else {
                    for c in run {
                        single.insert(c.clone()).unwrap();
                    }
                }
            }
        })
    };

    let consumers: Vec<_> = (0..2u64)
        .map(|t| {
            let cluster = cluster.clone();
            std::thread::spawn(move || {
                let mut client = BagClient::new(cluster, bag, 10 + t);
                let mut got = Vec::new();
                loop {
                    if t == 0 {
                        match client.try_remove_batch(8).unwrap() {
                            BatchRemoveResult::Chunks(chunks) => {
                                got.extend(chunks.iter().map(chunk_val))
                            }
                            BatchRemoveResult::Pending => std::thread::yield_now(),
                            BatchRemoveResult::Drained => return got,
                        }
                    } else {
                        use hurricane_storage::RemoveResult;
                        match client.try_remove().unwrap() {
                            RemoveResult::Chunk(c) => got.push(chunk_val(&c)),
                            RemoveResult::Pending => std::thread::yield_now(),
                            RemoveResult::Drained => return got,
                        }
                    }
                }
            })
        })
        .collect();

    producer.join().unwrap();
    cluster.seal_bag(bag).unwrap();
    let mut seen = HashSet::new();
    let mut delivered = 0u64;
    for h in consumers {
        for v in h.join().unwrap() {
            delivered += 1;
            assert!(seen.insert(v), "chunk {v} delivered more than once");
        }
    }
    assert_eq!(delivered, total);
    assert_eq!(seen.len() as u64, total);
}
