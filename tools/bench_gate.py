#!/usr/bin/env python3
"""Bench-smoke regression gate.

Diffs a fresh bench JSONL (the `BENCH_JSON` output of the criterion shim:
one `{"name", "ns_per_iter", "elems_per_sec"}` object per line) against
the committed baseline in `BENCH_storage.json` (`bench_smoke_baseline`
section) and fails on a throughput regression beyond the tolerance in the
gated suites.

Machine-aware: the baseline holds one entry per machine *shape* (cpu
count) under `shapes`. The gate enforces against the shape matching the
runner's cpu count; when that shape is absent the diff against the
nearest shape is informational — unless `--strict`, which turns a
missing runner shape into a failure (the binding mode CI runs in, so the
gate can never silently disarm itself on a new runner class).

Graduation: `--graduate OUT` writes a copy of the baseline file with the
fresh run's numbers installed under the runner's shape. CI uploads that
file as an artifact; committing it as `BENCH_storage.json` arms the gate
for that runner shape. Numbers are only ever *measured* into the
baseline this way, never hand-edited.

Exit codes: 0 ok / informational, 1 regression / missing shape (strict).
"""

import argparse
import datetime
import json
import os
import sys


def load_fresh(path):
    """Parses the shim's JSONL, keeping the last measurement per name."""
    fresh = {}
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("elems_per_sec") is not None:
                fresh[row["name"]] = float(row["elems_per_sec"])
    return fresh


def load_shapes(base):
    """Returns {cpus: {"date", "elems_per_sec"}} from the baseline section.

    Accepts both the `shapes` layout and the legacy single-shape layout
    (`cpus` + `elems_per_sec` at the section's top level).
    """
    if "shapes" in base:
        return {int(k): v for k, v in base["shapes"].items()}
    if "elems_per_sec" in base:
        return {
            int(base.get("cpus", 0)): {
                "date": base.get("date"),
                "elems_per_sec": base["elems_per_sec"],
            }
        }
    return {}


def graduate(committed, base, fresh, cpus, out_path):
    """Writes the baseline file with `fresh` installed as shape `cpus`."""
    shapes = {str(k): v for k, v in load_shapes(base).items()}
    shapes[str(cpus)] = {
        "date": datetime.date.today().isoformat(),
        "elems_per_sec": {k: fresh[k] for k in sorted(fresh)},
    }
    section = {k: v for k, v in base.items() if k not in ("cpus", "date", "elems_per_sec")}
    section["shapes"] = shapes
    committed = dict(committed)
    committed["bench_smoke_baseline"] = section
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(committed, f, indent=2)
        f.write("\n")
    print(f"graduated {len(fresh)} measurements as shape cpus={cpus} -> {out_path}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fresh", required=True, help="fresh BENCH_JSON (jsonl)")
    ap.add_argument(
        "--baseline", default="BENCH_storage.json", help="committed baseline json"
    )
    ap.add_argument(
        "--cpus",
        type=int,
        default=os.cpu_count(),
        help="runner cpu count (default: os.cpu_count())",
    )
    ap.add_argument(
        "--strict",
        action="store_true",
        help="fail when the baseline has no shape for the runner's cpu count",
    )
    ap.add_argument(
        "--graduate",
        metavar="OUT",
        help="also write the baseline with the fresh numbers installed under "
        "the runner's shape (for committing after review)",
    )
    args = ap.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        committed = json.load(f)
    base = committed.get("bench_smoke_baseline")
    if not base:
        print("no bench_smoke_baseline section committed; nothing to gate")
        return 0

    tolerance = float(base.get("tolerance_pct", 15)) / 100.0
    prefixes = tuple(base.get("suites_prefix", ["contended_"]))
    shapes = load_shapes(base)
    fresh = load_fresh(args.fresh)

    if args.graduate:
        graduate(committed, base, fresh, args.cpus, args.graduate)

    if not shapes:
        print("bench_smoke_baseline has no shapes; nothing to gate")
        return 1 if args.strict else 0

    enforce = args.cpus in shapes
    if enforce:
        shape_cpus = args.cpus
    else:
        # Nearest committed shape, for an informational diff only.
        shape_cpus = min(shapes, key=lambda c: abs(c - args.cpus))
    shape = shapes[shape_cpus]

    regressions = []
    missing = []
    checked = 0
    checked_per_prefix = {p: 0 for p in prefixes}
    for name, want in sorted(shape.get("elems_per_sec", {}).items()):
        matched = [p for p in prefixes if name.startswith(p)]
        if not matched:
            continue
        got = fresh.get(name)
        if got is None:
            print(f"  MISSING  {name} (not in fresh run)")
            missing.append(name)
            continue
        checked += 1
        for p in matched:
            checked_per_prefix[p] += 1
        delta = (got - want) / want * 100.0
        floor = want * (1.0 - tolerance)
        mark = "ok" if got >= floor else "REGRESSED"
        print(f"  {mark:>9}  {name}: {got:,.0f} vs baseline {want:,.0f} ({delta:+.1f}%)")
        if got < floor:
            regressions.append(name)

    per_suite = ", ".join(f"{p}*: {n}" for p, n in checked_per_prefix.items())
    print(
        f"checked {checked} gated benches ({per_suite}), tolerance "
        f"{tolerance:.0%}, baseline shape cpus={shape_cpus}, runner "
        f"cpus={args.cpus}"
    )
    # A suites_prefix that matches zero baseline entries gates nothing —
    # usually a typo or a rename that forgot the baseline. Fail loudly
    # rather than letting the gate silently disarm itself.
    dead = [p for p, n in checked_per_prefix.items() if n == 0
            and not any(name.startswith(p) for name in shape.get("elems_per_sec", {}))]
    if dead:
        print(
            f"FAIL: suites_prefix {dead} match no baseline benchmark — "
            "add their elems_per_sec entries or fix the prefix"
        )
        return 1
    if not enforce:
        if args.strict:
            print(
                f"FAIL: no baseline shape for runner cpus={args.cpus} "
                "(--strict) — commit the graduated baseline artifact of a "
                "run from this runner class to arm the gate"
            )
            return 1
        print(
            f"no baseline shape for runner cpus={args.cpus}; diff above is "
            "informational — graduate a runner-shaped baseline to arm the gate"
        )
        return 0
    if missing:
        # A renamed suite or a broken BENCH_JSON must not silently disarm
        # the gate: every gated baseline name has to show up fresh.
        print(
            f"FAIL: {len(missing)} gated benchmark(s) missing from the fresh "
            "run — update bench_smoke_baseline if the suite was renamed"
        )
        return 1
    if regressions:
        print(f"FAIL: {len(regressions)} regression(s) beyond tolerance")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
