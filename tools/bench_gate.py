#!/usr/bin/env python3
"""Bench-smoke regression gate.

Diffs a fresh bench JSONL (the `BENCH_JSON` output of the criterion shim:
one `{"name", "ns_per_iter", "elems_per_sec"}` object per line) against
the committed baseline in `BENCH_storage.json` (`bench_smoke_baseline`
section) and fails on a throughput regression beyond the tolerance in the
gated suites.

Machine-aware: the baseline records the cpu count it was measured on.
When the runner's cpu count differs (e.g. a 1-cpu container baseline
checked on the 8-core CI runner), the comparison is reported but does not
fail the build — cross-machine throughput deltas are not regressions.
The first artifact measured on the CI runner's shape should be graduated
into `bench_smoke_baseline` to arm the gate there (see the section's
`note`).

Exit codes: 0 ok / informational, 1 regression beyond tolerance.
"""

import argparse
import json
import os
import sys


def load_fresh(path):
    """Parses the shim's JSONL, keeping the last measurement per name."""
    fresh = {}
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("elems_per_sec") is not None:
                fresh[row["name"]] = float(row["elems_per_sec"])
    return fresh


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fresh", required=True, help="fresh BENCH_JSON (jsonl)")
    ap.add_argument(
        "--baseline", default="BENCH_storage.json", help="committed baseline json"
    )
    ap.add_argument(
        "--cpus",
        type=int,
        default=os.cpu_count(),
        help="runner cpu count (default: os.cpu_count())",
    )
    args = ap.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        committed = json.load(f)
    base = committed.get("bench_smoke_baseline")
    if not base:
        print("no bench_smoke_baseline section committed; nothing to gate")
        return 0

    tolerance = float(base.get("tolerance_pct", 15)) / 100.0
    prefixes = tuple(base.get("suites_prefix", ["contended_"]))
    baseline_cpus = int(base.get("cpus", 0))
    enforce = baseline_cpus == args.cpus
    fresh = load_fresh(args.fresh)

    regressions = []
    missing = []
    checked = 0
    checked_per_prefix = {p: 0 for p in prefixes}
    for name, want in sorted(base.get("elems_per_sec", {}).items()):
        matched = [p for p in prefixes if name.startswith(p)]
        if not matched:
            continue
        got = fresh.get(name)
        if got is None:
            print(f"  MISSING  {name} (not in fresh run)")
            missing.append(name)
            continue
        checked += 1
        for p in matched:
            checked_per_prefix[p] += 1
        delta = (got - want) / want * 100.0
        floor = want * (1.0 - tolerance)
        mark = "ok" if got >= floor else "REGRESSED"
        print(f"  {mark:>9}  {name}: {got:,.0f} vs baseline {want:,.0f} ({delta:+.1f}%)")
        if got < floor:
            regressions.append(name)

    per_suite = ", ".join(f"{p}*: {n}" for p, n in checked_per_prefix.items())
    print(
        f"checked {checked} gated benches ({per_suite}), tolerance "
        f"{tolerance:.0%}, baseline cpus={baseline_cpus}, runner cpus={args.cpus}"
    )
    # A suites_prefix that matches zero baseline entries gates nothing —
    # usually a typo or a rename that forgot the baseline. Fail loudly
    # rather than letting the gate silently disarm itself.
    dead = [p for p, n in checked_per_prefix.items() if n == 0
            and not any(name.startswith(p) for name in base.get("elems_per_sec", {}))]
    if dead:
        print(
            f"FAIL: suites_prefix {dead} match no baseline benchmark — "
            "add their elems_per_sec entries or fix the prefix"
        )
        return 1
    if missing and enforce:
        # A renamed suite or a broken BENCH_JSON must not silently disarm
        # the gate: every gated baseline name has to show up fresh.
        print(
            f"FAIL: {len(missing)} gated benchmark(s) missing from the fresh "
            "run — update bench_smoke_baseline if the suite was renamed"
        )
        return 1
    if regressions and enforce:
        print(f"FAIL: {len(regressions)} regression(s) beyond tolerance")
        return 1
    if regressions or missing:
        print(
            "issues observed but baseline machine shape differs from the "
            "runner's — informational only; graduate a runner-shaped baseline "
            "into bench_smoke_baseline to arm the gate"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
